//! Parameterized random database generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tmql_model::{Record, Ty, Value};
use tmql_storage::{Catalog, Table};

use crate::zipf::Zipf;

/// Join-key distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SkewKind {
    /// Uniform over the key domain.
    Uniform,
    /// Zipf with the given exponent.
    Zipf(f64),
}

/// Generator configuration shared by the experiment workloads.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Outer table cardinality.
    pub outer: usize,
    /// Inner table cardinality.
    pub inner: usize,
    /// Fraction of outer tuples with **no** inner match — the dangling
    /// tuples whose treatment distinguishes Kim / Ganski–Wong / nest join.
    pub dangling_fraction: f64,
    /// Maximum size of set-valued attributes.
    pub max_set: usize,
    /// Key distribution on the inner side.
    pub skew: SkewKind,
    /// RNG seed (generation is deterministic given the config).
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            outer: 1000,
            inner: 1000,
            dangling_fraction: 0.25,
            max_set: 4,
            skew: SkewKind::Uniform,
            seed: 42,
        }
    }
}

impl GenConfig {
    /// Scale both tables to `n`.
    pub fn sized(n: usize) -> GenConfig {
        GenConfig {
            outer: n,
            inner: n,
            ..GenConfig::default()
        }
    }

    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// The number of distinct join keys that have inner matches.
    fn matched_keys(&self) -> usize {
        // Key domain = outer size; the first `matched` keys get inner rows,
        // outer rows beyond that are dangling.
        let matched = ((1.0 - self.dangling_fraction) * self.outer as f64).round() as usize;
        matched.max(1)
    }
}

/// Generate the Section 2 relational pair `R(a, b, c)`, `S(c, d)`:
/// `R.c`/`S.c` is the correlation key; `R.b` holds the **true** count of
/// matching `S` rows for half of `R` (so the COUNT-bug query selects them)
/// and an off-by-one count for the rest.
pub fn gen_rs(cfg: &GenConfig) -> Catalog {
    let mut rng = cfg.rng();
    let mut cat = Catalog::new();
    let matched = cfg.matched_keys();

    // Build S first so R.b can be the exact count.
    let zipf = match cfg.skew {
        SkewKind::Uniform => None,
        SkewKind::Zipf(theta) => Some(Zipf::new(matched, theta)),
    };
    let mut s_counts = vec![0i64; cfg.outer.max(1)];
    let mut s = Table::new("S", vec![("c".into(), Ty::Int), ("d".into(), Ty::Int)]);
    let mut inserted = 0usize;
    let mut d_val = 0i64;
    while inserted < cfg.inner {
        let key = match &zipf {
            Some(z) => z.sample(&mut rng),
            None => rng.gen_range(0..matched),
        };
        d_val += 1;
        let rec = Record::new([
            ("c".to_string(), Value::Int(key as i64)),
            ("d".to_string(), Value::Int(d_val)),
        ])
        .expect("distinct labels");
        if s.insert(rec).expect("valid row") {
            s_counts[key] += 1;
            inserted += 1;
        }
    }

    let mut r = Table::new(
        "R",
        vec![
            ("a".into(), Ty::Int),
            ("b".into(), Ty::Int),
            ("c".into(), Ty::Int),
        ],
    );
    for (i, &true_count) in s_counts.iter().enumerate().take(cfg.outer) {
        let key = i as i64; // keys ≥ matched are dangling (no S rows)
                            // Half of the rows get the true count (including 0 for dangling
                            // rows — the bug triggers); half get a wrong count.
        let b = if i % 2 == 0 {
            true_count
        } else {
            true_count + 1
        };
        r.insert(
            Record::new([
                ("a".to_string(), Value::Int(i as i64)),
                ("b".to_string(), Value::Int(b)),
                ("c".to_string(), Value::Int(key)),
            ])
            .expect("distinct labels"),
        )
        .expect("valid row");
    }

    cat.register(r).expect("fresh catalog");
    cat.register(s).expect("fresh catalog");
    cat
}

/// Generate the complex-object pair `X(a: P INT, b, n)`, `Y(b, a)` used by
/// the Table 2 / SUBSETEQ experiments: `X.b`/`Y.b` is the correlation key,
/// `X.a` is a set-valued attribute drawn from the same domain as `Y.a`
/// (so ⊆/∩ predicates have non-trivial selectivity), and `X.n` is an
/// integer for the atomic rows.
pub fn gen_xy(cfg: &GenConfig) -> Catalog {
    let mut rng = cfg.rng();
    let mut cat = Catalog::new();
    let matched = cfg.matched_keys();
    let domain = (cfg.max_set * 4).max(8) as i64;

    let mut x = Table::new(
        "X",
        vec![
            ("a".into(), Ty::Set(Box::new(Ty::Int))),
            ("b".into(), Ty::Int),
            ("n".into(), Ty::Int),
        ],
    );
    let mut i = 0usize;
    while x.len() < cfg.outer {
        let set_size = rng.gen_range(0..=cfg.max_set);
        let set = Value::set((0..set_size).map(|_| Value::Int(rng.gen_range(0..domain))));
        let key = i as i64;
        x.insert(
            Record::new([
                ("a".to_string(), set),
                ("b".to_string(), Value::Int(key)),
                ("n".to_string(), Value::Int(rng.gen_range(0..domain))),
            ])
            .expect("distinct labels"),
        )
        .expect("valid row");
        i += 1;
    }

    let zipf = match cfg.skew {
        SkewKind::Uniform => None,
        SkewKind::Zipf(theta) => Some(Zipf::new(matched, theta)),
    };
    let mut y = Table::new("Y", vec![("b".into(), Ty::Int), ("a".into(), Ty::Int)]);
    let mut inserted = 0usize;
    let mut guard = 0usize;
    while inserted < cfg.inner && guard < cfg.inner * 20 {
        guard += 1;
        let key = match &zipf {
            Some(z) => z.sample(&mut rng),
            None => rng.gen_range(0..matched),
        };
        let rec = Record::new([
            ("b".to_string(), Value::Int(key as i64)),
            ("a".to_string(), Value::Int(rng.gen_range(0..domain))),
        ])
        .expect("distinct labels");
        if y.insert(rec).expect("valid row") {
            inserted += 1;
        }
    }

    cat.register(x).expect("fresh catalog");
    cat.register(y).expect("fresh catalog");
    cat
}

/// Generate the Section 8 chain `X(a: P INT, b)`, `Y(a, b, c: P INT, d)`,
/// `Z(c, d)` at the given scale: `X.b ↔ Y.b` and `Y.d ↔ Z.d` are the
/// correlation keys with the configured dangling fraction at both levels.
pub fn gen_xyz(cfg: &GenConfig) -> Catalog {
    let mut rng = cfg.rng();
    let mut cat = Catalog::new();
    let matched = cfg.matched_keys();
    let domain = (cfg.max_set * 4).max(8) as i64;

    let mut x = Table::new(
        "X",
        vec![
            ("a".into(), Ty::Set(Box::new(Ty::Int))),
            ("b".into(), Ty::Int),
        ],
    );
    for i in 0..cfg.outer {
        let size = rng.gen_range(0..=cfg.max_set);
        x.insert(
            Record::new([
                (
                    "a".to_string(),
                    Value::set((0..size).map(|_| Value::Int(rng.gen_range(0..domain)))),
                ),
                ("b".to_string(), Value::Int(i as i64)),
            ])
            .expect("distinct labels"),
        )
        .expect("valid row");
    }

    let y_matched = ((1.0 - cfg.dangling_fraction) * cfg.inner as f64)
        .round()
        .max(1.0) as usize;
    let mut y = Table::new(
        "Y",
        vec![
            ("a".into(), Ty::Int),
            ("b".into(), Ty::Int),
            ("c".into(), Ty::Set(Box::new(Ty::Int))),
            ("d".into(), Ty::Int),
        ],
    );
    for i in 0..cfg.inner {
        let size = rng.gen_range(0..=cfg.max_set);
        y.insert(
            Record::new([
                ("a".to_string(), Value::Int(rng.gen_range(0..domain))),
                (
                    "b".to_string(),
                    Value::Int(rng.gen_range(0..matched) as i64),
                ),
                (
                    "c".to_string(),
                    Value::set((0..size).map(|_| Value::Int(rng.gen_range(0..domain)))),
                ),
                ("d".to_string(), Value::Int(i as i64)),
            ])
            .expect("distinct labels"),
        )
        .expect("valid row");
    }

    let mut z = Table::new("Z", vec![("c".into(), Ty::Int), ("d".into(), Ty::Int)]);
    let mut inserted = 0usize;
    let mut guard = 0usize;
    while inserted < cfg.inner && guard < cfg.inner * 20 {
        guard += 1;
        let rec = Record::new([
            ("c".to_string(), Value::Int(rng.gen_range(0..domain))),
            (
                "d".to_string(),
                Value::Int(rng.gen_range(0..y_matched) as i64),
            ),
        ])
        .expect("distinct labels");
        if z.insert(rec).expect("valid row") {
            inserted += 1;
        }
    }

    cat.register(x).expect("fresh catalog");
    cat.register(y).expect("fresh catalog");
    cat.register(z).expect("fresh catalog");
    cat
}

/// Generate a scaled Employee/Department database (for the Q2-style
/// SELECT-nesting experiments): `emps` departments × `fanout` employees,
/// with `dangling_fraction` of departments in cities without employees.
pub fn gen_company(cfg: &GenConfig) -> Catalog {
    let mut rng = cfg.rng();
    let mut cat = Catalog::new();
    let n_dept = cfg.outer.max(1);
    let n_emp = cfg.inner.max(1);
    let matched_cities = ((1.0 - cfg.dangling_fraction) * n_dept as f64)
        .round()
        .max(1.0) as usize;

    let addr_ty = Ty::Tuple(vec![
        ("street".into(), Ty::Str),
        ("nr".into(), Ty::Str),
        ("city".into(), Ty::Str),
    ]);
    let mk_addr = |street: String, nr: i64, city: String| {
        Value::Tuple(
            Record::new([
                ("street".to_string(), Value::str(street)),
                ("nr".to_string(), Value::str(nr.to_string())),
                ("city".to_string(), Value::str(city)),
            ])
            .expect("distinct labels"),
        )
    };

    let mut emp = Table::new(
        "EMP",
        vec![
            ("name".into(), Ty::Str),
            ("address".into(), addr_ty.clone()),
            ("sal".into(), Ty::Int),
        ],
    );
    for i in 0..n_emp {
        let city = format!("city{}", rng.gen_range(0..matched_cities));
        emp.insert(
            Record::new([
                ("name".to_string(), Value::str(format!("emp{i}"))),
                (
                    "address".to_string(),
                    mk_addr(format!("street{}", rng.gen_range(0..50)), i as i64, city),
                ),
                ("sal".to_string(), Value::Int(rng.gen_range(2000..8000))),
            ])
            .expect("distinct labels"),
        )
        .expect("valid row");
    }

    let mut dept = Table::new(
        "DEPT",
        vec![("name".into(), Ty::Str), ("address".into(), addr_ty)],
    );
    for i in 0..n_dept {
        // Departments beyond `matched_cities` sit in employee-less cities.
        let city = format!("city{i}");
        dept.insert(
            Record::new([
                ("name".to_string(), Value::str(format!("dept{i}"))),
                (
                    "address".to_string(),
                    mk_addr(format!("street{}", rng.gen_range(0..50)), i as i64, city),
                ),
            ])
            .expect("distinct labels"),
        )
        .expect("valid row");
    }

    cat.register(emp).expect("fresh catalog");
    cat.register(dept).expect("fresh catalog");
    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_counts_are_exact_for_even_rows() {
        let cfg = GenConfig {
            outer: 40,
            inner: 60,
            dangling_fraction: 0.5,
            ..Default::default()
        };
        let cat = gen_rs(&cfg);
        let r = cat.table("R").unwrap();
        let s = cat.table("S").unwrap();
        assert_eq!(r.len(), 40);
        assert_eq!(s.len(), 60);
        // Even rows carry the true count of S matches.
        for row in r.rows().take(10) {
            let a = row.get("a").unwrap().as_int().unwrap();
            if a % 2 == 0 {
                let c = row.get("c").unwrap();
                let b = row.get("b").unwrap().as_int().unwrap();
                let actual = s.rows().filter(|srow| srow.get("c").unwrap() == c).count() as i64;
                assert_eq!(b, actual, "row a={a}");
            }
        }
    }

    #[test]
    fn dangling_fraction_respected_in_rs() {
        let cfg = GenConfig {
            outer: 100,
            inner: 200,
            dangling_fraction: 0.3,
            ..Default::default()
        };
        let cat = gen_rs(&cfg);
        let s = cat.table("S").unwrap();
        let max_key = s
            .rows()
            .map(|r| r.get("c").unwrap().as_int().unwrap())
            .max()
            .unwrap();
        assert!(
            max_key < 70,
            "inner keys must avoid the dangling range, got {max_key}"
        );
    }

    #[test]
    fn xy_has_set_valued_attribute() {
        let cat = gen_xy(&GenConfig::sized(30));
        let x = cat.table("X").unwrap();
        assert!(x
            .rows()
            .all(|r| matches!(r.get("a").unwrap(), Value::Set(_))));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_xy(&GenConfig::sized(25));
        let b = gen_xy(&GenConfig::sized(25));
        assert!(a
            .table("X")
            .unwrap()
            .same_contents(b.table("X").unwrap())
            .unwrap());
        assert!(a
            .table("Y")
            .unwrap()
            .same_contents(b.table("Y").unwrap())
            .unwrap());
    }

    #[test]
    fn xyz_scales() {
        let cat = gen_xyz(&GenConfig {
            outer: 20,
            inner: 30,
            ..Default::default()
        });
        assert_eq!(cat.table("X").unwrap().len(), 20);
        assert_eq!(cat.table("Y").unwrap().len(), 30);
        assert!(!cat.table("Z").unwrap().is_empty());
    }

    #[test]
    fn company_scales_and_danglers_exist() {
        let cfg = GenConfig {
            outer: 10,
            inner: 40,
            dangling_fraction: 0.4,
            ..Default::default()
        };
        let cat = gen_company(&cfg);
        assert_eq!(cat.table("DEPT").unwrap().len(), 10);
        assert_eq!(cat.table("EMP").unwrap().len(), 40);
    }

    #[test]
    fn zipf_skew_supported() {
        let cfg = GenConfig {
            skew: SkewKind::Zipf(1.1),
            ..GenConfig::sized(50)
        };
        let cat = gen_rs(&cfg);
        assert_eq!(cat.table("R").unwrap().len(), 50);
    }
}
