//! Property tests for the language front end:
//!
//! 1. **No panics**: the lexer/parser must return `Err`, never panic, on
//!    arbitrary input (including arbitrary Unicode).
//! 2. **Round trip**: for generated well-formed expressions,
//!    `parse(display(e))` succeeds and is display-stable
//!    (`display(parse(display(e))) == display(e)`).

use proptest::prelude::*;
use tmql_lang::ast::{Expr, FromItem};
use tmql_lang::parse_query;
use tmql_lang::token::Span;

fn sp() -> Span {
    Span::new(0, 0)
}

/// Generated identifiers avoid keywords by construction (prefix `v`).
fn ident() -> impl Strategy<Value = String> {
    "[a-z]{0,4}".prop_map(|s| format!("v{s}"))
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(|i| Expr::Int(i, sp())),
        any::<bool>().prop_map(|b| Expr::Bool(b, sp())),
        "[a-z ]{0,5}".prop_map(|s| Expr::Str(s, sp())),
        ident().prop_map(|v| Expr::Var(v, sp())),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), ident()).prop_map(|(e, f)| Expr::Field(Box::new(e), f, sp())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Cmp(
                tmql_lang::ast::CmpOp::Eq,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::SetCmp(
                tmql_lang::ast::SetCmpOp::SubsetEq,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            inner
                .clone()
                .prop_map(|e| Expr::Agg(tmql_lang::ast::AggFn::Count, Box::new(e), sp())),
            prop::collection::vec(inner.clone(), 0..3).prop_map(|es| Expr::SetLit(es, sp())),
            (ident(), inner.clone(), inner.clone()).prop_map(|(v, over, pred)| Expr::Quant {
                q: tmql_lang::ast::Quantifier::Exists,
                var: v,
                over: Box::new(over),
                pred: Box::new(pred),
                span: sp(),
            }),
            // A small SFW block.
            (ident(), ident(), inner.clone(), prop::option::of(inner)).prop_map(
                |(table_like, var, sel, wh)| {
                    Expr::Sfw {
                        select: Box::new(sel),
                        from: vec![FromItem {
                            operand: Expr::Var(format!("T{table_like}"), sp()),
                            var,
                            span: sp(),
                        }],
                        where_clause: wh.map(Box::new),
                        with_bindings: vec![],
                        span: sp(),
                    }
                }
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: parse returns, never panics.
    #[test]
    fn parser_never_panics(src in "\\PC{0,80}") {
        let _ = parse_query(&src);
    }

    /// Arbitrary token-ish soup: also no panics.
    #[test]
    fn parser_never_panics_on_token_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("FROM".to_string()),
                Just("WHERE".to_string()),
                Just("IN".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(",".to_string()),
                Just("=".to_string()),
                Just("COUNT".to_string()),
                "[a-z]{1,3}".prop_map(|s| s),
                (0i64..99).prop_map(|i| i.to_string()),
            ],
            0..24,
        )
    ) {
        let src = words.join(" ");
        let _ = parse_query(&src);
    }

    /// Round trip: display → parse → display is stable. `NOT` is applied
    /// only at the top level: it is the one prefix form the printer leaves
    /// unparenthesized, so in operand position it is outside the grammar's
    /// image (everything else prints self-delimiting).
    #[test]
    fn display_parse_round_trip(
        (e, negate) in (arb_expr(), any::<bool>()).prop_map(|(e, n)| {
            if n { (Expr::Not(Box::new(e)), true) } else { (e, false) }
        })
    ) {
        let _ = negate;
        let printed = e.to_string();
        match parse_query(&printed) {
            Ok(reparsed) => {
                prop_assert_eq!(
                    reparsed.to_string(),
                    printed.clone(),
                    "unstable round trip for `{}`", printed
                );
            }
            Err(err) => {
                return Err(TestCaseError::fail(format!(
                    "`{printed}` failed to reparse: {}",
                    err.render(&printed)
                )));
            }
        }
    }
}
