#![warn(missing_docs)]

//! # tmql-lang — the TM SELECT-FROM-WHERE query language
//!
//! An ASCII front end for the TM expression fragment the paper works with
//! (Section 3): orthogonal SFW blocks (subqueries may appear in the SELECT
//! clause, the WHERE clause, and as operands), set-valued attributes and
//! path expressions, quantifiers, aggregates, and set comparisons.
//!
//! The paper's mathematical operators are spelled as keywords:
//!
//! | paper | tmql | | paper | tmql |
//! |-------|------|-|-------|------|
//! | `∈`   | `IN` | | `⊆` | `SUBSETEQ` |
//! | `∉`   | `NOT IN` | | `⊂` | `SUBSET` |
//! | `∩ = ∅` | `DISJOINT` | | `⊇` | `SUPERSETEQ` |
//! | `∩ ≠ ∅` | `INTERSECTS` | | `⊃` | `SUPERSET` |
//! | `∃v ∈ s (p)` | `EXISTS v IN s (p)` | | `∀` | `FORALL v IN s (p)` |
//!
//! Query Q1 of the paper, in tmql syntax:
//!
//! ```text
//! SELECT d
//! FROM DEPT d
//! WHERE (s = d.address.street, c = d.address.city)
//!       IN (SELECT (s = e.address.street, c = e.address.city)
//!           FROM d.emps e)
//! ```
//!
//! The pipeline is [`lex`](fn@lexer::lex) → [`parse`](parser::parse_query) →
//! [`bind + typecheck`](typecheck::check_query); lowering to the algebra
//! lives in `tmql-translate`.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod typecheck;

pub use ast::{Expr, FromItem};
pub use lexer::lex;
pub use parser::{parse_query, ParseError};
pub use typecheck::{check_query, TypeError};
