//! Binder and type checker.
//!
//! Resolves identifiers (iteration variable vs. class extension), checks
//! the TM typing rules over the structural type language of `tmql-model`,
//! and reports located errors. The checker is permissive where the model
//! is ([`Ty::Any`] unifies with everything — the type of `{}`), strict
//! where queries die at runtime otherwise (unbound variables, non-set FROM
//! operands, non-boolean WHERE clauses).

use std::fmt;

use tmql_algebra::typing::TableTypes;
use tmql_algebra::AggFn;
use tmql_model::Ty;

use crate::ast::Expr;
use crate::token::Span;

/// A located type error.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    /// Human-readable message.
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl TypeError {
    fn new(message: impl Into<String>, span: Span) -> TypeError {
        TypeError {
            message: message.into(),
            span,
        }
    }

    /// Render with line/column resolved against the source.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        format!("type error at {line}:{col}: {}", self.message)
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

/// Type-check a query against a source of extension row types. Returns
/// the query's result type.
pub fn check_query(expr: &Expr, tables: &dyn TableTypes) -> Result<Ty, TypeError> {
    let mut scopes: Vec<(String, Ty)> = Vec::new();
    check(expr, tables, &mut scopes)
}

fn lookup(scopes: &[(String, Ty)], name: &str) -> Option<Ty> {
    scopes
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, t)| t.clone())
}

fn check(
    expr: &Expr,
    tables: &dyn TableTypes,
    scopes: &mut Vec<(String, Ty)>,
) -> Result<Ty, TypeError> {
    match expr {
        Expr::Int(..) => Ok(Ty::Int),
        Expr::Float(..) => Ok(Ty::Float),
        Expr::Str(..) => Ok(Ty::Str),
        Expr::Bool(..) => Ok(Ty::Bool),
        Expr::Var(name, span) => {
            if let Some(t) = lookup(scopes, name) {
                return Ok(t);
            }
            // An extension name used as a set expression.
            match tables.row_ty(name) {
                Ok(row) => Ok(Ty::Set(Box::new(row))),
                Err(_) => Err(TypeError::new(
                    format!("unbound variable or unknown extension `{name}`"),
                    *span,
                )),
            }
        }
        Expr::Field(base, label, span) => {
            let bt = check(base, tables, scopes)?;
            match &bt {
                Ty::Tuple(_) => bt.field(label).cloned().ok_or_else(|| {
                    TypeError::new(format!("tuple {bt} has no field `{label}`"), *span)
                }),
                Ty::Any => Ok(Ty::Any),
                other => Err(TypeError::new(
                    format!("field access on non-tuple type {other}"),
                    *span,
                )),
            }
        }
        Expr::Cmp(_, a, b) => {
            let (ta, tb) = (check(a, tables, scopes)?, check(b, tables, scopes)?);
            if !ta.compatible(&tb) {
                return Err(TypeError::new(
                    format!("cannot compare {ta} with {tb}"),
                    a.span(),
                ));
            }
            Ok(Ty::Bool)
        }
        Expr::SetCmp(op, a, b) => {
            use tmql_algebra::SetCmpOp::*;
            let (ta, tb) = (check(a, tables, scopes)?, check(b, tables, scopes)?);
            match op {
                In | NotIn => {
                    let elem = match &tb {
                        Ty::Set(e) => (**e).clone(),
                        Ty::Any => Ty::Any,
                        other => {
                            return Err(TypeError::new(
                                format!("right operand of IN must be a set, found {other}"),
                                b.span(),
                            ))
                        }
                    };
                    if !ta.compatible(&elem) {
                        return Err(TypeError::new(
                            format!("element type {ta} does not match set of {elem}"),
                            a.span(),
                        ));
                    }
                }
                _ => {
                    for (t, e) in [(&ta, a), (&tb, b)] {
                        if !matches!(t, Ty::Set(_) | Ty::Any) {
                            return Err(TypeError::new(
                                format!("set comparison needs set operands, found {t}"),
                                e.span(),
                            ));
                        }
                    }
                    if !ta.compatible(&tb) {
                        return Err(TypeError::new(
                            format!("incomparable set types {ta} and {tb}"),
                            a.span(),
                        ));
                    }
                }
            }
            Ok(Ty::Bool)
        }
        Expr::Arith(_, a, b) => {
            let (ta, tb) = (check(a, tables, scopes)?, check(b, tables, scopes)?);
            for (t, e) in [(&ta, a), (&tb, b)] {
                if !matches!(t, Ty::Int | Ty::Float | Ty::Any) {
                    return Err(TypeError::new(
                        format!("arithmetic on non-numeric type {t}"),
                        e.span(),
                    ));
                }
            }
            Ok(ta.join(&tb).unwrap_or(Ty::Float))
        }
        Expr::SetBin(_, a, b) => {
            let (ta, tb) = (check(a, tables, scopes)?, check(b, tables, scopes)?);
            for (t, e) in [(&ta, a), (&tb, b)] {
                if !matches!(t, Ty::Set(_) | Ty::Any) {
                    return Err(TypeError::new(
                        format!("set operation on non-set type {t}"),
                        e.span(),
                    ));
                }
            }
            ta.join(&tb).ok_or_else(|| {
                TypeError::new(format!("incompatible set types {ta} and {tb}"), a.span())
            })
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            for e in [a, b] {
                let t = check(e, tables, scopes)?;
                if !matches!(t, Ty::Bool | Ty::Any) {
                    return Err(TypeError::new(
                        format!("boolean connective over non-boolean {t}"),
                        e.span(),
                    ));
                }
            }
            Ok(Ty::Bool)
        }
        Expr::Not(e) => {
            let t = check(e, tables, scopes)?;
            if !matches!(t, Ty::Bool | Ty::Any) {
                return Err(TypeError::new(
                    format!("NOT over non-boolean {t}"),
                    e.span(),
                ));
            }
            Ok(Ty::Bool)
        }
        Expr::Agg(f, e, span) => {
            let t = check(e, tables, scopes)?;
            let elem = match &t {
                Ty::Set(inner) => (**inner).clone(),
                Ty::Any => Ty::Any,
                other => {
                    return Err(TypeError::new(
                        format!("aggregate over non-set type {other}"),
                        *span,
                    ))
                }
            };
            Ok(match f {
                AggFn::Count => Ty::Int,
                AggFn::Avg => Ty::Float,
                AggFn::Sum | AggFn::Min | AggFn::Max => {
                    if !matches!(elem, Ty::Int | Ty::Float | Ty::Str | Ty::Any) {
                        return Err(TypeError::new(
                            format!("{f} over non-atomic element type {elem}"),
                            *span,
                        ));
                    }
                    elem
                }
            })
        }
        Expr::Quant {
            var,
            over,
            pred,
            span,
            ..
        } => {
            let t = check(over, tables, scopes)?;
            let elem = match &t {
                Ty::Set(inner) => (**inner).clone(),
                Ty::Any => Ty::Any,
                other => {
                    return Err(TypeError::new(
                        format!("quantifier ranges over non-set type {other}"),
                        *span,
                    ))
                }
            };
            scopes.push((var.clone(), elem));
            let pt = check(pred, tables, scopes);
            scopes.pop();
            let pt = pt?;
            if !matches!(pt, Ty::Bool | Ty::Any) {
                return Err(TypeError::new(
                    format!("quantifier body must be boolean, found {pt}"),
                    pred.span(),
                ));
            }
            Ok(Ty::Bool)
        }
        Expr::TupleLit(fields, _) => {
            let mut out = Vec::with_capacity(fields.len());
            for (l, e) in fields {
                out.push((l.clone(), check(e, tables, scopes)?));
            }
            Ok(Ty::Tuple(out))
        }
        Expr::SetLit(items, span) => {
            let mut elem = Ty::Any;
            for e in items {
                let t = check(e, tables, scopes)?;
                elem = elem.join(&t).ok_or_else(|| {
                    TypeError::new("heterogeneous set literal".to_string(), *span)
                })?;
            }
            Ok(Ty::Set(Box::new(elem)))
        }
        Expr::Unnest(e, span) => {
            let t = check(e, tables, scopes)?;
            match t {
                Ty::Set(inner) => match *inner {
                    Ty::Set(_) => Ok(*inner),
                    Ty::Any => Ok(Ty::Set(Box::new(Ty::Any))),
                    other => Err(TypeError::new(
                        format!("UNNEST needs a set of sets, found set of {other}"),
                        *span,
                    )),
                },
                Ty::Any => Ok(Ty::Set(Box::new(Ty::Any))),
                other => Err(TypeError::new(
                    format!("UNNEST over non-set type {other}"),
                    *span,
                )),
            }
        }
        Expr::Sfw {
            select,
            from,
            where_clause,
            with_bindings,
            ..
        } => {
            let depth = scopes.len();
            let mut result = Err(TypeError::new("empty FROM", expr.span()));
            // Bind FROM items left to right; later operands may reference
            // earlier variables (orthogonality).
            for item in from {
                let t = check(&item.operand, tables, scopes);
                let t = match t {
                    Ok(t) => t,
                    Err(e) => {
                        scopes.truncate(depth);
                        return Err(e);
                    }
                };
                let elem = match t {
                    Ty::Set(inner) => *inner,
                    Ty::Any => Ty::Any,
                    other => {
                        scopes.truncate(depth);
                        return Err(TypeError::new(
                            format!("FROM operand must be a set, found {other}"),
                            item.span,
                        ));
                    }
                };
                scopes.push((item.var.clone(), elem));
                result = Ok(());
            }
            let _ = result;
            // WITH bindings are in scope for the WHERE predicate and the
            // SELECT expression (the paper writes the clause after WHERE,
            // but its definitions bind within the block).
            for (var, e) in with_bindings {
                let t = match check(e, tables, scopes) {
                    Ok(t) => t,
                    Err(err) => {
                        scopes.truncate(depth);
                        return Err(err);
                    }
                };
                scopes.push((var.clone(), t));
            }
            if let Some(w) = where_clause {
                let wt = check(w, tables, scopes);
                match wt {
                    Ok(Ty::Bool | Ty::Any) => {}
                    Ok(other) => {
                        scopes.truncate(depth);
                        return Err(TypeError::new(
                            format!("WHERE clause must be boolean, found {other}"),
                            w.span(),
                        ));
                    }
                    Err(e) => {
                        scopes.truncate(depth);
                        return Err(e);
                    }
                }
            }
            let st = check(select, tables, scopes);
            scopes.truncate(depth);
            Ok(Ty::Set(Box::new(st?)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use std::collections::BTreeMap;
    use tmql_algebra::typing::StaticTables;

    fn tables() -> StaticTables {
        let mut m = BTreeMap::new();
        m.insert(
            "EMP".to_string(),
            Ty::Tuple(vec![
                ("name".into(), Ty::Str),
                ("sal".into(), Ty::Int),
                (
                    "address".into(),
                    Ty::Tuple(vec![("street".into(), Ty::Str), ("city".into(), Ty::Str)]),
                ),
                (
                    "children".into(),
                    Ty::Set(Box::new(Ty::Tuple(vec![
                        ("name".into(), Ty::Str),
                        ("age".into(), Ty::Int),
                    ]))),
                ),
            ]),
        );
        m.insert(
            "X".to_string(),
            Ty::Tuple(vec![
                ("a".into(), Ty::Set(Box::new(Ty::Int))),
                ("b".into(), Ty::Int),
            ]),
        );
        m.insert(
            "Y".to_string(),
            Ty::Tuple(vec![("a".into(), Ty::Int), ("b".into(), Ty::Int)]),
        );
        StaticTables(m)
    }

    fn check_src(src: &str) -> Result<Ty, TypeError> {
        let e = parse_query(src).expect("parses");
        check_query(&e, &tables())
    }

    #[test]
    fn simple_query_types() {
        let t = check_src("SELECT e.name FROM EMP e WHERE e.sal > 100").unwrap();
        assert_eq!(t, Ty::Set(Box::new(Ty::Str)));
    }

    #[test]
    fn nested_path_and_set_attr() {
        let t = check_src("SELECT e.address.city FROM EMP e").unwrap();
        assert_eq!(t, Ty::Set(Box::new(Ty::Str)));
        let t = check_src("SELECT c.name FROM EMP e, e.children c WHERE c.age < 10").unwrap();
        assert_eq!(t, Ty::Set(Box::new(Ty::Str)));
    }

    #[test]
    fn subquery_membership_types() {
        let t = check_src("SELECT x FROM X x WHERE x.b IN (SELECT y.a FROM Y y WHERE x.b = y.b)")
            .unwrap();
        assert!(matches!(t, Ty::Set(_)));
    }

    #[test]
    fn subseteq_over_sets() {
        assert!(check_src(
            "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)"
        )
        .is_ok());
        // Atomic ⊆ set is a type error.
        let err =
            check_src("SELECT x FROM X x WHERE x.b SUBSETEQ (SELECT y.a FROM Y y)").unwrap_err();
        assert!(err.message.contains("set comparison"), "{err:?}");
    }

    #[test]
    fn unbound_and_unknown_names() {
        let err = check_src("SELECT q FROM X x").unwrap_err();
        assert!(err.message.contains("unbound"), "{err:?}");
        let err = check_src("SELECT x FROM NOPE x").unwrap_err();
        assert!(
            err.message
                .contains("unbound variable or unknown extension"),
            "{err:?}"
        );
    }

    #[test]
    fn where_must_be_boolean() {
        let err = check_src("SELECT x FROM X x WHERE x.b + 1").unwrap_err();
        assert!(err.message.contains("WHERE"), "{err:?}");
    }

    #[test]
    fn from_operand_must_be_set() {
        let err = check_src("SELECT c FROM EMP e, e.sal c").unwrap_err();
        assert!(err.message.contains("FROM operand"), "{err:?}");
    }

    #[test]
    fn bad_field_and_comparisons() {
        assert!(check_src("SELECT e.nope FROM EMP e").is_err());
        assert!(check_src("SELECT e FROM EMP e WHERE e.sal = e.name").is_err());
        assert!(check_src("SELECT e FROM EMP e WHERE e.name + 1 > 0").is_err());
    }

    #[test]
    fn aggregates_and_quantifiers() {
        let t = check_src("SELECT COUNT(e.children) FROM EMP e").unwrap();
        assert_eq!(t, Ty::Set(Box::new(Ty::Int)));
        assert!(
            check_src("SELECT e FROM EMP e WHERE EXISTS c IN e.children (c.age > e.sal)").is_ok()
        );
        assert!(check_src("SELECT e FROM EMP e WHERE EXISTS c IN e.sal (TRUE)").is_err());
        assert!(check_src("SELECT SUM(e.children) FROM EMP e").is_err());
    }

    #[test]
    fn empty_set_literal_unifies() {
        assert!(check_src("SELECT x FROM X x WHERE x.a = {}").is_ok());
        assert!(check_src("SELECT x FROM X x WHERE x.a SUBSETEQ {1, 2}").is_ok());
    }

    #[test]
    fn scope_is_restored_after_sfw() {
        // The inner e must not leak into the outer WHERE.
        let err =
            check_src("SELECT x FROM X x WHERE COUNT((SELECT e FROM EMP e)) = e.sal").unwrap_err();
        assert!(err.message.contains("unbound"), "{err:?}");
    }
}
