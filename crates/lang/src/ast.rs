//! The abstract syntax of TM query expressions.
//!
//! The operator enums ([`CmpOp`], [`SetCmpOp`], [`AggFn`], …) are shared
//! with the algebra crate — the language is designed to lower 1:1 onto
//! algebra scalar expressions, with the one addition of the
//! [`Expr::Sfw`] block (which lowers to *plans*, not scalars).

use std::fmt;

pub use tmql_algebra::{AggFn, ArithOp, CmpOp, Quantifier, SetBinOp, SetCmpOp};

use crate::token::Span;

/// One `FROM <operand> <var>` item.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// Operand expression: an extension name (`DEPT`) or any set-valued
    /// expression (`d.emps`) — TM is orthogonal (Section 3.2).
    pub operand: Expr,
    /// Iteration variable.
    pub var: String,
    /// Span of the variable, for diagnostics.
    pub span: Span,
}

/// A TM query expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Float literal.
    Float(f64, Span),
    /// String literal.
    Str(String, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// Variable or extension reference (the binder decides which).
    Var(String, Span),
    /// Field access `e.label`.
    Field(Box<Expr>, String, Span),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Set comparison (`IN`, `SUBSETEQ`, `DISJOINT`, …).
    SetCmp(SetCmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Set operation (`UNION`, `INTERSECT`, `EXCEPT`).
    SetBin(SetBinOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Aggregate application.
    Agg(AggFn, Box<Expr>, Span),
    /// Bounded quantifier `EXISTS v IN s (p)` / `FORALL v IN s (p)`.
    Quant {
        /// ∃ or ∀.
        q: Quantifier,
        /// Bound variable.
        var: String,
        /// Set ranged over.
        over: Box<Expr>,
        /// Body predicate.
        pred: Box<Expr>,
        /// Span of the binder.
        span: Span,
    },
    /// Tuple construction `(a = e, b = e)`.
    TupleLit(Vec<(String, Expr)>, Span),
    /// Set literal `{e1, e2}`.
    SetLit(Vec<Expr>, Span),
    /// `UNNEST(e)`.
    Unnest(Box<Expr>, Span),
    /// A SELECT-FROM-WHERE block, with the paper's optional `WITH` clause
    /// for local definitions (`WHERE P(x, z) WITH z = (SELECT …)`,
    /// Section 4).
    Sfw {
        /// Result expression.
        select: Box<Expr>,
        /// FROM items (≥ 1).
        from: Vec<FromItem>,
        /// Optional WHERE predicate.
        where_clause: Option<Box<Expr>>,
        /// `WITH var = expr` local definitions, in scope in the WHERE
        /// predicate and the SELECT expression.
        with_bindings: Vec<(String, Expr)>,
        /// Span of the `SELECT` keyword.
        span: Span,
    },
}

impl Expr {
    /// The span most representative of this expression (for diagnostics).
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Float(_, s)
            | Expr::Str(_, s)
            | Expr::Bool(_, s)
            | Expr::Var(_, s)
            | Expr::Field(_, _, s)
            | Expr::Agg(_, _, s)
            | Expr::TupleLit(_, s)
            | Expr::SetLit(_, s)
            | Expr::Unnest(_, s)
            | Expr::Quant { span: s, .. }
            | Expr::Sfw { span: s, .. } => *s,
            Expr::Cmp(_, a, _)
            | Expr::SetCmp(_, a, _)
            | Expr::Arith(_, a, _)
            | Expr::SetBin(_, a, _)
            | Expr::And(a, _)
            | Expr::Or(a, _)
            | Expr::Not(a) => a.span(),
        }
    }

    /// True iff the expression contains a nested SFW block.
    pub fn has_subquery(&self) -> bool {
        match self {
            Expr::Sfw { .. } => true,
            _ => self.children().iter().any(|c| c.has_subquery()),
        }
    }

    /// Immediate child expressions.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Int(..) | Expr::Float(..) | Expr::Str(..) | Expr::Bool(..) | Expr::Var(..) => {
                vec![]
            }
            Expr::Field(e, _, _) | Expr::Not(e) | Expr::Agg(_, e, _) | Expr::Unnest(e, _) => {
                vec![e]
            }
            Expr::Cmp(_, a, b)
            | Expr::SetCmp(_, a, b)
            | Expr::Arith(_, a, b)
            | Expr::SetBin(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => vec![a, b],
            Expr::Quant { over, pred, .. } => vec![over, pred],
            Expr::TupleLit(fs, _) => fs.iter().map(|(_, e)| e).collect(),
            Expr::SetLit(es, _) => es.iter().collect(),
            Expr::Sfw {
                select,
                from,
                where_clause,
                with_bindings,
                ..
            } => {
                let mut out: Vec<&Expr> = vec![select];
                out.extend(from.iter().map(|f| &f.operand));
                if let Some(w) = where_clause {
                    out.push(w);
                }
                out.extend(with_bindings.iter().map(|(_, e)| e));
                out
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(i, _) => write!(f, "{i}"),
            Expr::Float(x, _) => write!(f, "{x}"),
            Expr::Str(s, _) => write!(f, "{s:?}"),
            Expr::Bool(b, _) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Expr::Var(v, _) => write!(f, "{v}"),
            Expr::Field(e, l, _) => write!(f, "{e}.{l}"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::SetCmp(op, a, b) => {
                let kw = match op {
                    SetCmpOp::In => "IN",
                    SetCmpOp::NotIn => "NOT IN",
                    SetCmpOp::SubsetEq => "SUBSETEQ",
                    SetCmpOp::Subset => "SUBSET",
                    SetCmpOp::SupersetEq => "SUPERSETEQ",
                    SetCmpOp::Superset => "SUPERSET",
                    SetCmpOp::SetEq => "=",
                    SetCmpOp::SetNe => "<>",
                    SetCmpOp::Disjoint => "DISJOINT",
                    SetCmpOp::Intersects => "INTERSECTS",
                };
                write!(f, "({a} {kw} {b})")
            }
            Expr::Arith(op, a, b) => {
                let s = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({a} {s} {b})")
            }
            Expr::SetBin(op, a, b) => {
                let s = match op {
                    SetBinOp::Union => "UNION",
                    SetBinOp::Intersect => "INTERSECT",
                    SetBinOp::Difference => "EXCEPT",
                };
                write!(f, "({a} {s} {b})")
            }
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Agg(fun, e, _) => write!(f, "{fun}({e})"),
            Expr::Quant {
                q, var, over, pred, ..
            } => {
                let kw = match q {
                    Quantifier::Exists => "EXISTS",
                    Quantifier::Forall => "FORALL",
                };
                // The range is parenthesized because it parses at
                // set-expression level (prefix forms like NOT would not
                // round-trip otherwise).
                write!(f, "{kw} {var} IN ({over}) ({pred})")
            }
            Expr::TupleLit(fs, _) => {
                write!(f, "(")?;
                for (i, (l, e)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l} = {e}")?;
                }
                write!(f, ")")
            }
            Expr::SetLit(es, _) => {
                write!(f, "{{")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
            Expr::Unnest(e, _) => write!(f, "UNNEST({e})"),
            Expr::Sfw {
                select,
                from,
                where_clause,
                with_bindings,
                ..
            } => {
                write!(f, "(SELECT {select} FROM ")?;
                for (i, item) in from.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", item.operand, item.var)?;
                }
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                for (i, (v, e)) in with_bindings.iter().enumerate() {
                    write!(f, "{} {v} = {e}", if i == 0 { " WITH" } else { "," })?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::new(0, 0)
    }

    #[test]
    fn has_subquery_detects_nesting() {
        let sub = Expr::Sfw {
            select: Box::new(Expr::Var("y".into(), sp())),
            from: vec![FromItem {
                operand: Expr::Var("Y".into(), sp()),
                var: "y".into(),
                span: sp(),
            }],
            where_clause: None,
            with_bindings: vec![],
            span: sp(),
        };
        let pred = Expr::SetCmp(
            SetCmpOp::In,
            Box::new(Expr::Var("a".into(), sp())),
            Box::new(sub),
        );
        assert!(pred.has_subquery());
        assert!(!Expr::Var("a".into(), sp()).has_subquery());
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::SetCmp(
            SetCmpOp::SubsetEq,
            Box::new(Expr::Field(
                Box::new(Expr::Var("x".into(), sp())),
                "a".into(),
                sp(),
            )),
            Box::new(Expr::Var("z".into(), sp())),
        );
        assert_eq!(e.to_string(), "(x.a SUBSETEQ z)");
    }
}
