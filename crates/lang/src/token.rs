//! Tokens and source positions.

use std::fmt;

/// Byte offset span within the query source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// 1-based (line, column) of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, c) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// Keywords of the language (case-insensitive in source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // each variant is the keyword it names
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    Or,
    Not,
    In,
    Exists,
    Forall,
    Union,
    Intersect,
    Except,
    Subseteq,
    Subset,
    Superseteq,
    Superset,
    Disjoint,
    Intersects,
    Count,
    Sum,
    Min,
    Max,
    Avg,
    Unnest,
    With,
    True,
    False,
}

impl Keyword {
    /// Parse a keyword from an identifier-like word (case-insensitive).
    pub fn from_word(w: &str) -> Option<Keyword> {
        Some(match w.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "IN" => Keyword::In,
            "EXISTS" => Keyword::Exists,
            "FORALL" => Keyword::Forall,
            "UNION" => Keyword::Union,
            "INTERSECT" => Keyword::Intersect,
            "EXCEPT" => Keyword::Except,
            "SUBSETEQ" => Keyword::Subseteq,
            "SUBSET" => Keyword::Subset,
            "SUPERSETEQ" => Keyword::Superseteq,
            "SUPERSET" => Keyword::Superset,
            "DISJOINT" => Keyword::Disjoint,
            "INTERSECTS" => Keyword::Intersects,
            "COUNT" => Keyword::Count,
            "SUM" => Keyword::Sum,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "AVG" => Keyword::Avg,
            "UNNEST" => Keyword::Unnest,
            "WITH" => Keyword::With,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            _ => return None,
        })
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword.
    Kw(Keyword),
    /// Identifier (variable, attribute, or extension name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single- or double-quoted in source).
    Str(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// End of input (sentinel).
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Kw(k) => write!(f, "{k:?}"),
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "<>"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_case_insensitive() {
        assert_eq!(Keyword::from_word("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_word("SubsetEq"), Some(Keyword::Subseteq));
        assert_eq!(Keyword::from_word("dept"), None);
    }

    #[test]
    fn line_col() {
        let src = "SELECT d\nFROM DEPT d";
        let sp = Span::new(9, 13);
        assert_eq!(sp.line_col(src), (2, 1));
        assert_eq!(Span::new(0, 6).line_col(src), (1, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (1, 8));
    }
}
