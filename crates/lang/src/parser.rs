//! Recursive-descent parser with operator precedence.
//!
//! Precedence, loosest to tightest: `OR` < `AND` < `NOT` < comparisons /
//! set comparisons < `UNION`/`INTERSECT`/`EXCEPT` < `+ -` < `* /` < field
//! access. Parenthesized forms are disambiguated by lookahead: `(SELECT …)`
//! is a subquery, `(a = e, b = e)` (two or more fields) is a tuple
//! literal, anything else is grouping.

use std::fmt;

use tmql_algebra::{AggFn, ArithOp, CmpOp, Quantifier, SetBinOp, SetCmpOp};

use crate::ast::{Expr, FromItem};
use crate::lexer::lex;
use crate::token::{Keyword as K, Span, Tok, Token};

/// A parse (or lex) error with source location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Where in the source.
    pub span: Span,
}

impl ParseError {
    /// Construct an error.
    pub fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Render with line/column resolved against the original source.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        format!("parse error at {line}:{col}: {}", self.message)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at bytes {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete query (a single expression, usually an SFW block).
pub fn parse_query(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: K) -> bool {
        self.eat(&Tok::Kw(k))
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, ParseError> {
        if *self.peek() == tok {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                format!("expected {tok}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), ParseError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok((s, span))
            }
            other => Err(ParseError::new(
                format!("expected identifier, found {other}"),
                span,
            )),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        // SELECT at the start of an expression is a bare SFW block.
        if matches!(self.peek(), Tok::Kw(K::Select)) {
            return self.sfw();
        }
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(K::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(K::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        // `NOT IN` is handled in comparison; a leading NOT here is logical
        // negation.
        if matches!(self.peek(), Tok::Kw(K::Not)) && !matches!(self.peek2(), Tok::Kw(K::In)) {
            self.bump();
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.set_expr()?;
        let op = match self.peek() {
            Tok::Eq => Some(CmpOp::Eq),
            Tok::Ne => Some(CmpOp::Ne),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Le => Some(CmpOp::Le),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.set_expr()?;
            return Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        let set_op = match self.peek() {
            Tok::Kw(K::In) => Some(SetCmpOp::In),
            Tok::Kw(K::Not) if matches!(self.peek2(), Tok::Kw(K::In)) => Some(SetCmpOp::NotIn),
            Tok::Kw(K::Subseteq) => Some(SetCmpOp::SubsetEq),
            Tok::Kw(K::Subset) => Some(SetCmpOp::Subset),
            Tok::Kw(K::Superseteq) => Some(SetCmpOp::SupersetEq),
            Tok::Kw(K::Superset) => Some(SetCmpOp::Superset),
            Tok::Kw(K::Disjoint) => Some(SetCmpOp::Disjoint),
            Tok::Kw(K::Intersects) => Some(SetCmpOp::Intersects),
            _ => None,
        };
        if let Some(op) = set_op {
            self.bump();
            if op == SetCmpOp::NotIn {
                self.bump(); // the IN after NOT
            }
            let rhs = self.set_expr()?;
            return Ok(Expr::SetCmp(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn set_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Kw(K::Union) => SetBinOp::Union,
                Tok::Kw(K::Intersect) => SetBinOp::Intersect,
                Tok::Kw(K::Except) => SetBinOp::Difference,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::SetBin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => ArithOp::Add,
                Tok::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.postfix()?;
        loop {
            let op = match self.peek() {
                Tok::Star => ArithOp::Mul,
                Tok::Slash => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.postfix()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.eat(&Tok::Dot) {
            let (field, span) = self.ident()?;
            e = Expr::Field(Box::new(e), field, span);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Int(i, span))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Expr::Float(x, span))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, span))
            }
            Tok::Kw(K::True) => {
                self.bump();
                Ok(Expr::Bool(true, span))
            }
            Tok::Kw(K::False) => {
                self.bump();
                Ok(Expr::Bool(false, span))
            }
            Tok::Minus => {
                // Negative numeric literal.
                self.bump();
                match self.peek().clone() {
                    Tok::Int(i) => {
                        self.bump();
                        Ok(Expr::Int(-i, span))
                    }
                    Tok::Float(x) => {
                        self.bump();
                        Ok(Expr::Float(-x, span))
                    }
                    other => Err(ParseError::new(
                        format!("expected numeric literal after `-`, found {other}"),
                        span,
                    )),
                }
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name, span))
            }
            Tok::Kw(k @ (K::Count | K::Sum | K::Min | K::Max | K::Avg)) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let arg = self.expr()?;
                self.expect(Tok::RParen)?;
                let f = match k {
                    K::Count => AggFn::Count,
                    K::Sum => AggFn::Sum,
                    K::Min => AggFn::Min,
                    K::Max => AggFn::Max,
                    _ => AggFn::Avg,
                };
                Ok(Expr::Agg(f, Box::new(arg), span))
            }
            Tok::Kw(K::Unnest) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let arg = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Unnest(Box::new(arg), span))
            }
            Tok::Kw(k @ (K::Exists | K::Forall)) => {
                self.bump();
                let (var, _) = self.ident()?;
                self.expect(Tok::Kw(K::In))?;
                let over = self.set_expr()?;
                self.expect(Tok::LParen)?;
                let pred = self.expr()?;
                self.expect(Tok::RParen)?;
                let q = if k == K::Exists {
                    Quantifier::Exists
                } else {
                    Quantifier::Forall
                };
                Ok(Expr::Quant {
                    q,
                    var,
                    over: Box::new(over),
                    pred: Box::new(pred),
                    span,
                })
            }
            Tok::LBrace => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat(&Tok::RBrace) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RBrace)?;
                }
                Ok(Expr::SetLit(items, span))
            }
            Tok::LParen => {
                self.bump();
                // Subquery?
                if matches!(self.peek(), Tok::Kw(K::Select)) {
                    let sub = self.sfw()?;
                    self.expect(Tok::RParen)?;
                    return Ok(sub);
                }
                // Tuple literal? Needs `ident =` followed (after the first
                // field's expression) by a comma — single-field tuples are
                // parsed as grouping, which TM disambiguates by type; we
                // document the restriction instead.
                if let (Tok::Ident(_), Tok::Eq) = (self.peek(), self.peek2()) {
                    let checkpoint = self.pos;
                    if let Ok(t) = self.try_tuple_lit(span) {
                        return Ok(t);
                    }
                    self.pos = checkpoint;
                }
                let inner = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            other => Err(ParseError::new(format!("unexpected {other}"), span)),
        }
    }

    /// Parse `ident = expr (, ident = expr)* )` as a tuple literal;
    /// requires at least two fields (see [`Parser::primary`]).
    fn try_tuple_lit(&mut self, span: Span) -> Result<Expr, ParseError> {
        let mut fields = Vec::new();
        loop {
            let (label, lspan) = self.ident()?;
            self.expect(Tok::Eq)?;
            let value = self.expr()?;
            if fields.iter().any(|(l, _)| *l == label) {
                return Err(ParseError::new(
                    format!("duplicate tuple label `{label}`"),
                    lspan,
                ));
            }
            fields.push((label, value));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        if fields.len() < 2 {
            return Err(ParseError::new(
                "tuple literal needs at least two fields",
                span,
            ));
        }
        self.expect(Tok::RParen)?;
        Ok(Expr::TupleLit(fields, span))
    }

    /// `SELECT expr FROM operand var (, operand var)* [WHERE expr]`.
    fn sfw(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        self.expect(Tok::Kw(K::Select))?;
        let select = self.expr()?;
        self.expect(Tok::Kw(K::From))?;
        let mut from = Vec::new();
        loop {
            let operand = self.set_expr()?;
            let (var, vspan) = self.ident()?;
            if from.iter().any(|f: &FromItem| f.var == var) {
                return Err(ParseError::new(
                    format!("duplicate FROM variable `{var}`"),
                    vspan,
                ));
            }
            from.push(FromItem {
                operand,
                var,
                span: vspan,
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw(K::Where) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        // The paper's WITH clause for local definitions:
        // `WHERE P(x, z) WITH z = (SELECT …)` (Section 4).
        let mut with_bindings = Vec::new();
        if self.eat_kw(K::With) {
            loop {
                let (var, vspan) = self.ident()?;
                if from.iter().any(|f: &FromItem| f.var == var)
                    || with_bindings
                        .iter()
                        .any(|(v, _): &(String, Expr)| *v == var)
                {
                    return Err(ParseError::new(
                        format!("WITH variable `{var}` shadows an existing binding"),
                        vspan,
                    ));
                }
                self.expect(Tok::Eq)?;
                with_bindings.push((var, self.expr()?));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        Ok(Expr::Sfw {
            select: Box::new(select),
            from,
            where_clause,
            with_bindings,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Expr {
        parse_query(src).unwrap_or_else(|e| panic!("{}", e.render(src)))
    }

    #[test]
    fn parses_paper_query_q1() {
        let q1 = "SELECT d \
                  FROM DEPT d \
                  WHERE (s = d.address.street, c = d.address.city) \
                        IN (SELECT (s = e.address.street, c = e.address.city) FROM d.emps e)";
        let Expr::Sfw {
            select,
            from,
            where_clause,
            ..
        } = parse(q1)
        else {
            panic!("expected SFW")
        };
        assert!(matches!(*select, Expr::Var(ref v, _) if v == "d"));
        assert_eq!(from.len(), 1);
        let w = where_clause.unwrap();
        let Expr::SetCmp(SetCmpOp::In, lhs, rhs) = *w else {
            panic!("IN predicate")
        };
        assert!(matches!(*lhs, Expr::TupleLit(ref fs, _) if fs.len() == 2));
        assert!(matches!(*rhs, Expr::Sfw { .. }));
    }

    #[test]
    fn parses_paper_query_q2() {
        let q2 = "SELECT (dname = d.name, \
                          emps = (SELECT e FROM EMP e WHERE e.address.city = d.address.city)) \
                  FROM DEPT d";
        let Expr::Sfw { select, .. } = parse(q2) else {
            panic!("SFW")
        };
        let Expr::TupleLit(fields, _) = *select else {
            panic!("tuple select")
        };
        assert!(matches!(fields[1].1, Expr::Sfw { .. }));
    }

    #[test]
    fn parses_count_bug_query() {
        let q = "SELECT x FROM R x \
                 WHERE x.b = COUNT((SELECT y.d FROM S y WHERE x.c = y.c))";
        let Expr::Sfw { where_clause, .. } = parse(q) else {
            panic!()
        };
        let Expr::Cmp(CmpOp::Eq, _, rhs) = *where_clause.unwrap() else {
            panic!()
        };
        let Expr::Agg(AggFn::Count, inner, _) = *rhs else {
            panic!("COUNT")
        };
        assert!(matches!(*inner, Expr::Sfw { .. }));
    }

    #[test]
    fn parses_section8_query() {
        let q = "SELECT x FROM X x \
                 WHERE x.a SUBSETEQ (SELECT y.a FROM Y y \
                                     WHERE x.b = y.b AND \
                                           y.c SUBSETEQ (SELECT z.c FROM Z z WHERE y.d = z.d))";
        let e = parse(q);
        assert!(e.has_subquery());
        let Expr::Sfw { where_clause, .. } = e else {
            panic!()
        };
        assert!(matches!(
            *where_clause.unwrap(),
            Expr::SetCmp(SetCmpOp::SubsetEq, ..)
        ));
    }

    #[test]
    fn not_in_and_not_precedence() {
        let e = parse("SELECT x FROM X x WHERE NOT x.a IN (SELECT y.a FROM Y y)");
        let Expr::Sfw { where_clause, .. } = e else {
            panic!()
        };
        assert!(matches!(*where_clause.unwrap(), Expr::Not(_)));
        let e = parse("SELECT x FROM X x WHERE x.a NOT IN (SELECT y.a FROM Y y)");
        let Expr::Sfw { where_clause, .. } = e else {
            panic!()
        };
        assert!(matches!(
            *where_clause.unwrap(),
            Expr::SetCmp(SetCmpOp::NotIn, ..)
        ));
    }

    #[test]
    fn quantifiers() {
        let e = parse("SELECT x FROM X x WHERE EXISTS s IN x.kids (s.age < 10)");
        let Expr::Sfw { where_clause, .. } = e else {
            panic!()
        };
        let Expr::Quant {
            q: Quantifier::Exists,
            var,
            ..
        } = *where_clause.unwrap()
        else {
            panic!("quantifier")
        };
        assert_eq!(var, "s");
        assert!(parse_query("SELECT x FROM X x WHERE FORALL s IN x.kids (TRUE)").is_ok());
    }

    #[test]
    fn multi_from_and_set_ops() {
        let e = parse("SELECT (a = x.a, b = y.b) FROM X x, Y y WHERE x.b = y.b");
        let Expr::Sfw { from, .. } = e else { panic!() };
        assert_eq!(from.len(), 2);
        let e = parse("(SELECT x.a FROM X x) UNION (SELECT y.a FROM Y y)");
        assert!(matches!(e, Expr::SetBin(SetBinOp::Union, ..)));
    }

    #[test]
    fn unnest_and_empty_set() {
        let e = parse("UNNEST(SELECT (SELECT y.b FROM Y y WHERE x.b = y.a) FROM X x)");
        assert!(matches!(e, Expr::Unnest(..)));
        let e = parse("SELECT x FROM X x WHERE (SELECT y.a FROM Y y WHERE x.b = y.b) = {}");
        let Expr::Sfw { where_clause, .. } = e else {
            panic!()
        };
        let Expr::Cmp(CmpOp::Eq, _, rhs) = *where_clause.unwrap() else {
            panic!()
        };
        assert!(matches!(*rhs, Expr::SetLit(ref v, _) if v.is_empty()));
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse("1 + 2 * 3");
        let Expr::Arith(ArithOp::Add, _, rhs) = e else {
            panic!()
        };
        assert!(matches!(*rhs, Expr::Arith(ArithOp::Mul, ..)));
        let e = parse("-5 + 2");
        assert!(matches!(e, Expr::Arith(ArithOp::Add, ..)));
    }

    #[test]
    fn parse_errors_are_located() {
        let err = parse_query("SELECT x FROM").unwrap_err();
        assert!(err.render("SELECT x FROM").contains("1:14"), "{err:?}");
        assert!(parse_query("SELECT x FROM X x WHERE").is_err());
        // A single-field "(a = 1)" parses as a grouped comparison, not a
        // tuple (documented restriction); the binder rejects `a` later.
        let e = parse_query("SELECT (a = 1) FROM X x").unwrap();
        let Expr::Sfw { select, .. } = e else {
            panic!()
        };
        assert!(matches!(*select, Expr::Cmp(CmpOp::Eq, ..)));
        assert!(
            parse_query("SELECT x FROM X x, X x").is_err(),
            "duplicate var"
        );
        assert!(
            parse_query("SELECT (a = 1, a = 2) FROM X x").is_err(),
            "dup label"
        );
    }

    #[test]
    fn grouping_parens_still_work() {
        let e = parse("SELECT x FROM X x WHERE (x.a = 1 OR x.a = 2) AND x.b = 3");
        let Expr::Sfw { where_clause, .. } = e else {
            panic!()
        };
        assert!(matches!(*where_clause.unwrap(), Expr::And(..)));
    }
}
