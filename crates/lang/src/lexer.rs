//! The hand-written lexer.

use crate::parser::ParseError;
use crate::token::{Keyword, Span, Tok, Token};

/// Tokenize a query string. Comments run from `--` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push(&mut out, Tok::LParen, i, &mut i),
            ')' => push(&mut out, Tok::RParen, i, &mut i),
            '{' => push(&mut out, Tok::LBrace, i, &mut i),
            '}' => push(&mut out, Tok::RBrace, i, &mut i),
            ',' => push(&mut out, Tok::Comma, i, &mut i),
            '.' => push(&mut out, Tok::Dot, i, &mut i),
            '+' => push(&mut out, Tok::Plus, i, &mut i),
            '-' => push(&mut out, Tok::Minus, i, &mut i),
            '*' => push(&mut out, Tok::Star, i, &mut i),
            '/' => push(&mut out, Tok::Slash, i, &mut i),
            '=' => push(&mut out, Tok::Eq, i, &mut i),
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::Le,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        tok: Tok::Ne,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else {
                    push(&mut out, Tok::Lt, i, &mut i);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::Ge,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else {
                    push(&mut out, Tok::Gt, i, &mut i);
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token {
                    tok: Tok::Ne,
                    span: Span::new(i, i + 2),
                });
                i += 2;
            }
            '\'' | '"' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ParseError::new(
                                format!("unterminated string starting with {quote}"),
                                Span::new(start, start + 1),
                            ))
                        }
                        Some(&b) if b as char == quote => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    span: Span::new(start, i),
                });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit);
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let val: f64 = text.parse().map_err(|_| {
                        ParseError::new(format!("bad float literal `{text}`"), Span::new(start, i))
                    })?;
                    out.push(Token {
                        tok: Tok::Float(val),
                        span: Span::new(start, i),
                    });
                } else {
                    let text = &src[start..i];
                    let val: i64 = text.parse().map_err(|_| {
                        ParseError::new(
                            format!("integer literal `{text}` out of range"),
                            Span::new(start, i),
                        )
                    })?;
                    out.push(Token {
                        tok: Tok::Int(val),
                        span: Span::new(start, i),
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                if word.starts_with("__") {
                    return Err(ParseError::new(
                        format!("identifiers starting with `__` are reserved: `{word}`"),
                        Span::new(start, i),
                    ));
                }
                let tok = match Keyword::from_word(word) {
                    Some(k) => Tok::Kw(k),
                    None => Tok::Ident(word.to_string()),
                };
                out.push(Token {
                    tok,
                    span: Span::new(start, i),
                });
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    Span::new(i, i + 1),
                ))
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span::new(src.len(), src.len()),
    });
    Ok(out)
}

fn push(out: &mut Vec<Token>, tok: Tok, at: usize, i: &mut usize) {
    out.push(Token {
        tok,
        span: Span::new(at, at + 1),
    });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_q1_fragment() {
        let t = toks("SELECT d FROM DEPT d WHERE d.name = 'CS'");
        assert_eq!(
            t,
            vec![
                Tok::Kw(Keyword::Select),
                Tok::Ident("d".into()),
                Tok::Kw(Keyword::From),
                Tok::Ident("DEPT".into()),
                Tok::Ident("d".into()),
                Tok::Kw(Keyword::Where),
                Tok::Ident("d".into()),
                Tok::Dot,
                Tok::Ident("name".into()),
                Tok::Eq,
                Tok::Str("CS".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_operators() {
        let t = toks("1 2.5 <= >= <> != { } + - * /");
        assert_eq!(
            t,
            vec![
                Tok::Int(1),
                Tok::Float(2.5),
                Tok::Le,
                Tok::Ge,
                Tok::Ne,
                Tok::Ne,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = toks("SELECT -- the result\n 1");
        assert_eq!(t, vec![Tok::Kw(Keyword::Select), Tok::Int(1), Tok::Eof]);
    }

    #[test]
    fn path_after_int_not_float() {
        // `1.x` should lex as Int Dot Ident, not a float.
        let t = toks("1.x");
        assert_eq!(
            t,
            vec![Tok::Int(1), Tok::Dot, Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("'open").is_err());
        assert!(lex("a § b").is_err());
        assert!(lex("__reserved").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn spans_track_source() {
        let tokens = lex("SELECT\n  d").unwrap();
        let d = &tokens[1];
        assert_eq!(d.span.line_col("SELECT\n  d"), (2, 3));
    }
}
