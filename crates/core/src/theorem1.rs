//! Theorem 1 (Section 7): the grouping decision procedure.
//!
//! > **Theorem 1.** Grouping is not necessary if the predicate expression
//! > `P(x, z)` can be rewritten into a calculus expression of the form
//! > (1) `∃v ∈ z (P'(x, v))` or (2) `¬∃v ∈ z (P'(x, v))`. In this
//! > expression, `P'(x, v)` may be arbitrary.
//!
//! The constructive content of the theorem lives in [`crate::classify`](mod@crate::classify);
//! this module packages the decision and names the flat join operator the
//! rewrite licenses. The paper leaves open "whether grouping is always
//! necessary in case predicate P cannot be rewritten" — accordingly,
//! [`needs_grouping`] returning `true` means *our rewriter found no
//! Theorem 1 form*, not a proof that none exists.

use tmql_algebra::ScalarExpr;

use crate::classify::{classify, Classification};

/// Which flat join operator a grouping-free predicate maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatJoin {
    /// Form (1) `∃v ∈ z (P')`: semijoin ⋉.
    Semi,
    /// Form (2) `¬∃v ∈ z (P')`: antijoin ▷.
    Anti,
}

/// Decide whether evaluating `P(x, z)` requires the subquery result as a
/// whole (true) or can be answered by scanning it (false).
pub fn needs_grouping(pred: &ScalarExpr, z: &str) -> bool {
    matches!(classify(pred, z), Classification::RequiresGrouping)
}

/// The flat join operator for a grouping-free predicate, or `None` when
/// grouping is required (or the predicate ignores `z`).
pub fn flat_join(pred: &ScalarExpr, z: &str) -> Option<FlatJoin> {
    match classify(pred, z) {
        Classification::Existential { .. } => Some(FlatJoin::Semi),
        Classification::NegatedExistential { .. } => Some(FlatJoin::Anti),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::{AggFn, CmpOp, ScalarExpr as E, SetCmpOp};

    #[test]
    fn section8_example_predicates() {
        // P1: x.a ⊆ z and P2: y.c ⊆ z "do require grouping (see Table 2)".
        let p1 = E::set_cmp(SetCmpOp::SubsetEq, E::path("x", &["a"]), E::var("z"));
        assert!(needs_grouping(&p1, "z"));
        // "Now assume that the operators ⊆ in predicates P1 and P2 are
        // changed in ∈ and ∉ respectively, then the nest join operation in
        // (1) may be replaced by an antijoin operation, and the nest join
        // in (3) may be replaced by a semijoin operation."
        let p1_in = E::set_cmp(SetCmpOp::In, E::path("x", &["a"]), E::var("z"));
        assert_eq!(flat_join(&p1_in, "z"), Some(FlatJoin::Semi));
        let p2_notin = E::set_cmp(SetCmpOp::NotIn, E::path("y", &["c"]), E::var("z"));
        assert_eq!(flat_join(&p2_notin, "z"), Some(FlatJoin::Anti));
    }

    #[test]
    fn count_bug_predicate_needs_grouping() {
        let p = E::eq(E::path("x", &["b"]), E::agg(AggFn::Count, E::var("z")));
        assert!(needs_grouping(&p, "z"));
        assert_eq!(flat_join(&p, "z"), None);
    }

    #[test]
    fn arbitrary_body_allowed() {
        // ∃v ∈ z (v.age < x.limit ∧ v.name ≠ "root") — P' arbitrary.
        let body = E::and(
            E::cmp(CmpOp::Lt, E::path("v", &["age"]), E::path("x", &["limit"])),
            E::cmp(CmpOp::Ne, E::path("v", &["name"]), E::lit("root")),
        );
        let p = E::quant(tmql_algebra::Quantifier::Exists, "v", E::var("z"), body);
        assert_eq!(flat_join(&p, "z"), Some(FlatJoin::Semi));
    }

    #[test]
    fn independent_predicate_has_no_flat_join() {
        assert_eq!(flat_join(&E::lit(true), "z"), None);
        assert!(!needs_grouping(&E::lit(true), "z"));
    }
}
