//! The unnesting optimizer: strategy dispatch, cost-based strategy
//! selection, and rule-based cleanup.

use tmql_algebra::Plan;

use crate::rules;
use crate::strategy::{self, UnnestStrategy};

/// A cost model the optimizer can rank candidate plans with. Implemented
/// by `tmql-exec`'s statistics-backed estimator (adapted in the `tmql`
/// facade); the trait lives here so logical optimization does not depend
/// on the execution crate.
pub trait CostModel {
    /// Total estimated cost of executing `plan`, in abstract work units.
    /// Only the *ordering* matters to the optimizer.
    fn total_cost(&self, plan: &Plan) -> f64;
}

/// Rewrite a translated plan under the given strategy. This is pure plan
/// surgery — execution method selection (hash vs sort-merge vs nested
/// loop) happens later in `tmql-exec`'s planner, exactly the layering the
/// paper argues for: "after rewriting a nested query into a join query,
/// the optimizer has better possibilities to choose the most appropriate
/// join implementation" (Section 1).
///
/// [`UnnestStrategy::CostBased`] needs a [`CostModel`] to rank candidates;
/// this entry point has none and therefore degrades it to the rule-based
/// [`UnnestStrategy::Optimal`] pipeline. Use [`unnest_plan_with`] (or
/// [`Optimizer::optimize_with`]) to supply one.
pub fn unnest_plan(plan: Plan, strat: UnnestStrategy) -> Plan {
    unnest_plan_with(plan, strat, None)
}

/// [`unnest_plan`] with an optional cost model for
/// [`UnnestStrategy::CostBased`].
pub fn unnest_plan_with(plan: Plan, strat: UnnestStrategy, model: Option<&dyn CostModel>) -> Plan {
    match strat {
        UnnestStrategy::NestedLoop => strategy::nested_loop::rewrite(plan),
        UnnestStrategy::Kim => strategy::kim::rewrite(plan),
        UnnestStrategy::GanskiWong => strategy::ganski_wong::rewrite(plan),
        UnnestStrategy::Muralikrishna => strategy::muralikrishna::rewrite(plan),
        UnnestStrategy::NestJoin => strategy::nestjoin::rewrite(plan),
        UnnestStrategy::FlattenSemiAnti => strategy::semi_anti::rewrite(plan),
        UnnestStrategy::Optimal => optimal(plan),
        UnnestStrategy::CostBased => match model {
            Some(m) => cost_based(plan, m),
            None => optimal(plan),
        },
    }
}

/// The paper's full pipeline (Section 8): "In a preprocessing phase,
/// predicates between query blocks are rewritten into calculus
/// expressions if possible. … If predicates between query blocks require
/// grouping, a nest join operator is applied; if predicates do not need
/// grouping a flat join operation is executed."
fn optimal(plan: Plan) -> Plan {
    strategy::rewrite_blocks(plan, &mut |pred, input, subquery, label| {
        if let Some(p) = pred {
            // Try Theorem 1 flattening first (semijoin / antijoin) …
            if let Some(flat) = strategy::semi_anti::rewrite_one(p, input, subquery, label) {
                return Some(flat);
            }
            // … fall back to the nest join, keeping the block predicate.
            let nj = strategy::nestjoin::rewrite_one(input, subquery, label)?;
            return Some(nj.select(p.clone()));
        }
        // SELECT-clause nesting: nest join unconditionally (Section 5:
        // grouping is required; Section 6: "queries having subqueries in
        // the SELECT clause often describe nested results, so processing
        // by means of the nest join operation will be an appropriate
        // method").
        strategy::nestjoin::rewrite_one(input, subquery, label)
    })
}

/// Fraction by which a later candidate must undercut the incumbent's
/// estimated cost to displace it. Candidates are enumerated in the
/// paper's rule-preference order, so this is hysteresis against
/// estimation noise: the model overrides the Section 8 rules only when
/// it predicts a clear win, not on a coin-flip-sized gap.
const COST_MARGIN: f64 = 0.2;

/// Cost-based per-block selection: enumerate every applicable rewrite of
/// the block plus the nested-loop baseline, cost each candidate plan, and
/// keep the cheapest (subject to [`COST_MARGIN`]). Blocks whose inner
/// plan is not closed (Section 3.2: subquery operands that are set-valued
/// attributes) have no applicable rewrites and therefore stay
/// nested-loop; when Theorem 1 denies a flat join, only the grouping
/// strategies compete.
fn cost_based(plan: Plan, model: &dyn CostModel) -> Plan {
    strategy::rewrite_blocks(plan, &mut |pred, input, subquery, label| {
        // Candidates in rule-preference order (the `Optimal` pipeline's
        // own ranking first): flatten, nest join, then the relational
        // repairs.
        let mut candidates: Vec<Plan> = Vec::new();
        match pred {
            Some(p) => {
                if let Some(flat) = strategy::semi_anti::rewrite_one(p, input, subquery, label) {
                    candidates.push(flat);
                }
                if let Some(nj) = strategy::nestjoin::rewrite_one(input, subquery, label) {
                    candidates.push(nj.select(p.clone()));
                }
                if let Some(mur) = strategy::muralikrishna::rewrite_one(p, input, subquery, label) {
                    candidates.push(mur);
                }
                if let Some(gw) = strategy::ganski_wong::rewrite_one(input, subquery, label) {
                    candidates.push(gw.select(p.clone()));
                }
            }
            None => {
                if let Some(nj) = strategy::nestjoin::rewrite_one(input, subquery, label) {
                    candidates.push(nj);
                }
                if let Some(gw) = strategy::ganski_wong::rewrite_one(input, subquery, label) {
                    candidates.push(gw);
                }
            }
        }
        if candidates.is_empty() {
            // Not closed / not canonical: nested-loop is the only option.
            return None;
        }
        let mut best: Option<(Plan, f64)> = None;
        for candidate in candidates {
            let cost = model.total_cost(&candidate);
            let displaces = match &best {
                None => true,
                Some((_, incumbent)) => cost < incumbent * (1.0 - COST_MARGIN),
            };
            if displaces {
                best = Some((candidate, cost));
            }
        }
        let (best, best_cost) = best.expect("candidates is non-empty");
        // The rewrites still have to beat keeping the Apply outright (no
        // margin: the nested loop is the fallback, not the preference).
        let baseline = {
            let apply = input.clone().apply(subquery.clone(), label);
            match pred {
                Some(p) => apply.select(p.clone()),
                None => apply,
            }
        };
        if best_cost <= model.total_cost(&baseline) {
            Some(best)
        } else {
            None
        }
    })
}

/// A configured optimizer: strategy + optional rule cleanup.
#[derive(Debug, Clone, Copy)]
pub struct Optimizer {
    /// Unnesting strategy.
    pub strategy: UnnestStrategy,
    /// Run [`rules::cleanup`] (selection pushdown, projection elimination,
    /// UNNEST collapse) after unnesting.
    pub apply_rules: bool,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer {
            strategy: UnnestStrategy::CostBased,
            apply_rules: true,
        }
    }
}

impl Optimizer {
    /// Optimizer with a fixed strategy and cleanup enabled.
    pub fn with_strategy(strategy: UnnestStrategy) -> Optimizer {
        Optimizer {
            strategy,
            apply_rules: true,
        }
    }

    /// Run the full logical optimization pipeline without a cost model
    /// ([`UnnestStrategy::CostBased`] degrades to the rule-based
    /// pipeline — see [`unnest_plan`]).
    pub fn optimize(&self, plan: Plan) -> Plan {
        self.optimize_with(plan, None)
    }

    /// Run the full logical optimization pipeline, ranking
    /// [`UnnestStrategy::CostBased`] candidates with `model`.
    pub fn optimize_with(&self, plan: Plan, model: Option<&dyn CostModel>) -> Plan {
        // UNNEST collapse must run before unnesting: it removes the Apply
        // entirely (Section 5's special case), which is strictly better
        // than any join strategy for it.
        let plan = if self.apply_rules {
            tmql_algebra::rewrite::fixpoint(plan, 4, &mut |node| {
                rules::unnest_collapse(&node).unwrap_or(node)
            })
        } else {
            plan
        };
        let plan = unnest_plan_with(plan, self.strategy, model);
        if self.apply_rules {
            rules::cleanup(plan)
        } else {
            plan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::{AggFn, ScalarExpr as E, SetCmpOp};

    fn sub() -> Plan {
        Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
            .map(E::path("y", &["a"]), "s")
    }

    fn where_block(pred: E) -> Plan {
        Plan::scan("X", "x")
            .apply(sub(), "z")
            .select(pred)
            .map(E::var("x"), "out")
    }

    /// A deterministic toy model: counts operators, charging `Apply`
    /// heavily (so any rewrite beats the baseline) and `LeftOuterJoin`
    /// mildly (so the nest join beats the relational fixes), mirroring the
    /// ranking of the real estimator without needing a catalog.
    struct OpCountModel;

    impl CostModel for OpCountModel {
        fn total_cost(&self, plan: &Plan) -> f64 {
            let mut cost = 0.0;
            plan.any_node(&mut |n| {
                cost += match n {
                    Plan::Apply { .. } => 1000.0,
                    Plan::LeftOuterJoin { .. } => 50.0,
                    Plan::GroupAgg { .. } | Plan::Nest { .. } => 25.0,
                    Plan::NestJoin { .. } => 20.0,
                    _ => 1.0,
                };
                false
            });
            cost
        }
    }

    #[test]
    fn optimal_flattens_membership_to_semijoin() {
        let plan = where_block(E::set_cmp(SetCmpOp::In, E::path("x", &["a"]), E::var("z")));
        let out = unnest_plan(plan, UnnestStrategy::Optimal);
        assert!(out.any_node(&mut |n| matches!(n, Plan::SemiJoin { .. })));
        assert!(!out.has_nest_join());
    }

    #[test]
    fn optimal_uses_nestjoin_for_grouping_predicates() {
        let plan = where_block(E::set_cmp(
            SetCmpOp::SubsetEq,
            E::path("x", &["a"]),
            E::var("z"),
        ));
        let out = unnest_plan(plan, UnnestStrategy::Optimal);
        assert!(out.has_nest_join());
        assert!(!out.has_apply());
    }

    #[test]
    fn optimal_handles_select_clause_nesting() {
        let q2 = Plan::scan("DEPT", "d")
            .apply(sub(), "emps")
            .map(E::var("emps"), "out");
        let out = unnest_plan(q2, UnnestStrategy::Optimal);
        assert!(out.has_nest_join());
    }

    #[test]
    fn all_strategies_remove_apply_for_count_query_except_nested_loop() {
        let pred = E::eq(E::path("x", &["b"]), E::agg(AggFn::Count, E::var("z")));
        for strat in UnnestStrategy::ALL {
            let out = unnest_plan(where_block(pred.clone()), strat);
            match strat {
                UnnestStrategy::NestedLoop | UnnestStrategy::FlattenSemiAnti => {
                    assert!(
                        out.has_apply(),
                        "{} should keep the Apply here",
                        strat.name()
                    );
                }
                _ => assert!(!out.has_apply(), "{} should unnest", strat.name()),
            }
        }
    }

    #[test]
    fn cost_based_picks_semijoin_for_membership() {
        let plan = where_block(E::set_cmp(SetCmpOp::In, E::path("x", &["a"]), E::var("z")));
        let out = unnest_plan_with(plan, UnnestStrategy::CostBased, Some(&OpCountModel));
        assert!(
            out.any_node(&mut |n| matches!(n, Plan::SemiJoin { .. })),
            "{out}"
        );
        assert!(!out.has_apply());
    }

    #[test]
    fn cost_based_chooses_cheapest_grouping_candidate() {
        // ⊆ requires grouping: candidates are Muralikrishna (ν + ⟕),
        // nest join, Ganski–Wong (⟕ + ν*). Under the toy model the nest
        // join (20) beats Muralikrishna (25 + 50) and GW (50 + 25).
        let plan = where_block(E::set_cmp(
            SetCmpOp::SubsetEq,
            E::path("x", &["a"]),
            E::var("z"),
        ));
        let out = unnest_plan_with(plan, UnnestStrategy::CostBased, Some(&OpCountModel));
        assert!(out.has_nest_join(), "{out}");
        assert!(
            !out.any_node(&mut |n| matches!(n, Plan::LeftOuterJoin { .. })),
            "{out}"
        );
        assert!(!out.has_apply());
    }

    #[test]
    fn cost_based_can_prefer_group_first_when_model_says_so() {
        // Same query, but a model that charges the nest join above the
        // relational group-first plan: Muralikrishna's ν + ⟕ shape wins.
        struct NestJoinHostile;
        impl CostModel for NestJoinHostile {
            fn total_cost(&self, plan: &Plan) -> f64 {
                let mut cost = 0.0;
                plan.any_node(&mut |n| {
                    cost += match n {
                        Plan::Apply { .. } => 1000.0,
                        Plan::NestJoin { .. } => 500.0,
                        _ => 1.0,
                    };
                    false
                });
                cost
            }
        }
        let pred = E::eq(E::path("x", &["b"]), E::agg(AggFn::Count, E::var("z")));
        let out = unnest_plan_with(
            where_block(pred),
            UnnestStrategy::CostBased,
            Some(&NestJoinHostile),
        );
        assert!(!out.has_apply());
        assert!(!out.has_nest_join(), "{out}");
        assert!(
            out.any_node(&mut |n| matches!(n, Plan::GroupAgg { .. })),
            "{out}"
        );
    }

    #[test]
    fn cost_based_degrades_to_nested_loop_when_inner_not_closed() {
        // FROM d.emps e — the inner plan references the outer variable, so
        // no strategy applies (Section 3.2) and the Apply must survive.
        let sub = Plan::ScanExpr {
            expr: E::path("d", &["emps"]),
            var: "e".into(),
        }
        .map(E::var("e"), "s");
        let plan = Plan::scan("DEPT", "d").apply(sub, "z").select(E::set_cmp(
            SetCmpOp::In,
            E::path("d", &["mgr"]),
            E::var("z"),
        ));
        let out = unnest_plan_with(plan, UnnestStrategy::CostBased, Some(&OpCountModel));
        assert!(out.has_apply(), "{out}");
        assert!(!out.has_nest_join());
    }

    #[test]
    fn cost_based_without_model_matches_optimal() {
        for pred in [
            E::set_cmp(SetCmpOp::In, E::path("x", &["a"]), E::var("z")),
            E::set_cmp(SetCmpOp::SubsetEq, E::path("x", &["a"]), E::var("z")),
        ] {
            let a = unnest_plan(where_block(pred.clone()), UnnestStrategy::CostBased);
            let b = unnest_plan(where_block(pred), UnnestStrategy::Optimal);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn optimizer_pipeline_applies_cleanup() {
        // Membership block with an extra x-only conjunct: after flattening,
        // the residual select pushes below the semijoin.
        let pred = E::and(
            E::cmp(tmql_algebra::CmpOp::Gt, E::path("x", &["a"]), E::lit(0i64)),
            E::set_cmp(SetCmpOp::In, E::path("x", &["a"]), E::var("z")),
        );
        let out = Optimizer::default().optimize(where_block(pred));
        // Residual landed below the semijoin's left input.
        let pushed = out.any_node(&mut |n| {
            matches!(n, Plan::SemiJoin { left, .. } if matches!(&**left, Plan::Select { .. }))
        });
        assert!(pushed, "{out}");
    }

    #[test]
    fn optimizer_collapses_unnest_before_strategies() {
        let sub = Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["a"])))
            .map(E::path("y", &["b"]), "g");
        let plan = Plan::Unnest {
            input: Box::new(Plan::scan("X", "x").apply(sub, "z").map(E::var("z"), "m")),
            expr: E::var("m"),
            elem_var: "u".into(),
            drop_vars: vec!["m".into()],
        };
        let out = Optimizer::default().optimize(plan);
        assert!(!out.has_apply());
        assert!(!out.has_nest_join(), "collapse must beat nest join: {out}");
        assert!(out.any_node(&mut |n| matches!(n, Plan::Join { .. })));
    }
}
