//! The unnesting optimizer: strategy dispatch plus rule-based cleanup.

use tmql_algebra::Plan;

use crate::rules;
use crate::strategy::{self, UnnestStrategy};

/// Rewrite a translated plan under the given strategy. This is pure plan
/// surgery — execution method selection (hash vs sort-merge vs nested
/// loop) happens later in `tmql-exec`'s planner, exactly the layering the
/// paper argues for: "after rewriting a nested query into a join query,
/// the optimizer has better possibilities to choose the most appropriate
/// join implementation" (Section 1).
pub fn unnest_plan(plan: Plan, strat: UnnestStrategy) -> Plan {
    match strat {
        UnnestStrategy::NestedLoop => strategy::nested_loop::rewrite(plan),
        UnnestStrategy::Kim => strategy::kim::rewrite(plan),
        UnnestStrategy::GanskiWong => strategy::ganski_wong::rewrite(plan),
        UnnestStrategy::Muralikrishna => strategy::muralikrishna::rewrite(plan),
        UnnestStrategy::NestJoin => strategy::nestjoin::rewrite(plan),
        UnnestStrategy::FlattenSemiAnti => strategy::semi_anti::rewrite(plan),
        UnnestStrategy::Optimal => optimal(plan),
    }
}

/// The paper's full pipeline (Section 8): "In a preprocessing phase,
/// predicates between query blocks are rewritten into calculus
/// expressions if possible. … If predicates between query blocks require
/// grouping, a nest join operator is applied; if predicates do not need
/// grouping a flat join operation is executed."
fn optimal(plan: Plan) -> Plan {
    strategy::rewrite_blocks(plan, &mut |pred, input, subquery, label| {
        if let Some(p) = pred {
            // Try Theorem 1 flattening first (semijoin / antijoin) …
            if let Some(flat) = strategy::semi_anti::rewrite_one(p, input, subquery, label) {
                return Some(flat);
            }
            // … fall back to the nest join, keeping the block predicate.
            let nj = strategy::nestjoin::rewrite_one(input, subquery, label)?;
            return Some(nj.select(p.clone()));
        }
        // SELECT-clause nesting: nest join unconditionally (Section 5:
        // grouping is required; Section 6: "queries having subqueries in
        // the SELECT clause often describe nested results, so processing
        // by means of the nest join operation will be an appropriate
        // method").
        strategy::nestjoin::rewrite_one(input, subquery, label)
    })
}

/// A configured optimizer: strategy + optional rule cleanup.
#[derive(Debug, Clone, Copy)]
pub struct Optimizer {
    /// Unnesting strategy.
    pub strategy: UnnestStrategy,
    /// Run [`rules::cleanup`] (selection pushdown, projection elimination,
    /// UNNEST collapse) after unnesting.
    pub apply_rules: bool,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer { strategy: UnnestStrategy::Optimal, apply_rules: true }
    }
}

impl Optimizer {
    /// Optimizer with a fixed strategy and cleanup enabled.
    pub fn with_strategy(strategy: UnnestStrategy) -> Optimizer {
        Optimizer { strategy, apply_rules: true }
    }

    /// Run the full logical optimization pipeline.
    pub fn optimize(&self, plan: Plan) -> Plan {
        // UNNEST collapse must run before unnesting: it removes the Apply
        // entirely (Section 5's special case), which is strictly better
        // than any join strategy for it.
        let plan = if self.apply_rules {
            tmql_algebra::rewrite::fixpoint(plan, 4, &mut |node| {
                rules::unnest_collapse(&node).unwrap_or(node)
            })
        } else {
            plan
        };
        let plan = unnest_plan(plan, self.strategy);
        if self.apply_rules {
            rules::cleanup(plan)
        } else {
            plan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::{AggFn, ScalarExpr as E, SetCmpOp};

    fn sub() -> Plan {
        Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
            .map(E::path("y", &["a"]), "s")
    }

    fn where_block(pred: E) -> Plan {
        Plan::scan("X", "x").apply(sub(), "z").select(pred).map(E::var("x"), "out")
    }

    #[test]
    fn optimal_flattens_membership_to_semijoin() {
        let plan = where_block(E::set_cmp(SetCmpOp::In, E::path("x", &["a"]), E::var("z")));
        let out = unnest_plan(plan, UnnestStrategy::Optimal);
        assert!(out.any_node(&mut |n| matches!(n, Plan::SemiJoin { .. })));
        assert!(!out.has_nest_join());
    }

    #[test]
    fn optimal_uses_nestjoin_for_grouping_predicates() {
        let plan =
            where_block(E::set_cmp(SetCmpOp::SubsetEq, E::path("x", &["a"]), E::var("z")));
        let out = unnest_plan(plan, UnnestStrategy::Optimal);
        assert!(out.has_nest_join());
        assert!(!out.has_apply());
    }

    #[test]
    fn optimal_handles_select_clause_nesting() {
        let q2 = Plan::scan("DEPT", "d").apply(sub(), "emps").map(E::var("emps"), "out");
        let out = unnest_plan(q2, UnnestStrategy::Optimal);
        assert!(out.has_nest_join());
    }

    #[test]
    fn all_strategies_remove_apply_for_count_query_except_nested_loop() {
        let pred = E::eq(E::path("x", &["b"]), E::agg(AggFn::Count, E::var("z")));
        for strat in UnnestStrategy::ALL {
            let out = unnest_plan(where_block(pred.clone()), strat);
            match strat {
                UnnestStrategy::NestedLoop | UnnestStrategy::FlattenSemiAnti => {
                    assert!(out.has_apply(), "{} should keep the Apply here", strat.name());
                }
                _ => assert!(!out.has_apply(), "{} should unnest", strat.name()),
            }
        }
    }

    #[test]
    fn optimizer_pipeline_applies_cleanup() {
        // Membership block with an extra x-only conjunct: after flattening,
        // the residual select pushes below the semijoin.
        let pred = E::and(
            E::cmp(tmql_algebra::CmpOp::Gt, E::path("x", &["a"]), E::lit(0i64)),
            E::set_cmp(SetCmpOp::In, E::path("x", &["a"]), E::var("z")),
        );
        let out = Optimizer::default().optimize(where_block(pred));
        // Residual landed below the semijoin's left input.
        let pushed = out.any_node(&mut |n| {
            matches!(n, Plan::SemiJoin { left, .. } if matches!(&**left, Plan::Select { .. }))
        });
        assert!(pushed, "{out}");
    }

    #[test]
    fn optimizer_collapses_unnest_before_strategies() {
        let sub = Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["a"])))
            .map(E::path("y", &["b"]), "g");
        let plan = Plan::Unnest {
            input: Box::new(Plan::scan("X", "x").apply(sub, "z").map(E::var("z"), "m")),
            expr: E::var("m"),
            elem_var: "u".into(),
            drop_vars: vec!["m".into()],
        };
        let out = Optimizer::default().optimize(plan);
        assert!(!out.has_apply());
        assert!(!out.has_nest_join(), "collapse must beat nest join: {out}");
        assert!(out.any_node(&mut |n| matches!(n, Plan::Join { .. })));
    }
}
