//! Predicate classification — the engine behind Theorem 1.
//!
//! Given a predicate `P(x, z)` between query blocks, where `z` names the
//! subquery result, decide whether `P` can be rewritten into one of the two
//! calculus forms of **Theorem 1** (Section 7):
//!
//! 1. `∃v ∈ z (P'(x, v))` — no grouping needed; the nested query flattens
//!    to a **semijoin**;
//! 2. `¬∃v ∈ z (P'(x, v))` — no grouping needed; flattens to an
//!    **antijoin**;
//!
//! or whether it **requires grouping** (nest join territory). The rewrites
//! cover the paper's Table 2 catalogue ([`crate::table2`]) plus a few
//! sound extensions (MIN/MAX comparisons, quantifier bodies), each
//! documented at its match arm.

use tmql_algebra::{AggFn, CmpOp, Quantifier, ScalarExpr, SetCmpOp};
use tmql_model::Value;

/// The fresh variable name used for `v` in produced rewrites. Double
/// underscore keeps it out of the user's namespace (the parser rejects
/// leading `__`).
pub const FRESH_VAR: &str = "__v";

/// Result of classifying a predicate `P(x, z)` with respect to `z`.
#[derive(Debug, Clone, PartialEq)]
pub enum Classification {
    /// `P` does not mention `z` at all; the subquery is dead code for this
    /// predicate.
    Independent,
    /// `P ≡ ∃v ∈ z (pred)` with `v` = [`FRESH_VAR`] free in `pred`.
    Existential {
        /// The rewritten body `P'(x, v)`.
        pred: ScalarExpr,
    },
    /// `P ≡ ¬∃v ∈ z (pred)`.
    NegatedExistential {
        /// The rewritten body `P'(x, v)`.
        pred: ScalarExpr,
    },
    /// No rewrite into Theorem 1 form found: the subquery result must be
    /// available *as a whole* (Section 4: "all tuples belonging to the
    /// subquery result must be kept").
    RequiresGrouping,
}

impl Classification {
    /// True iff the classification licenses a flat (semi/anti) join.
    pub fn avoids_grouping(&self) -> bool {
        matches!(
            self,
            Classification::Independent
                | Classification::Existential { .. }
                | Classification::NegatedExistential { .. }
        )
    }

    fn negate(self) -> Classification {
        match self {
            Classification::Existential { pred } => Classification::NegatedExistential { pred },
            Classification::NegatedExistential { pred } => Classification::Existential { pred },
            Classification::Independent => Classification::Independent,
            Classification::RequiresGrouping => Classification::RequiresGrouping,
        }
    }
}

/// Split a conjunctive predicate into the conjunct mentioning `z` and the
/// remaining `x`-only conjuncts. Returns `None` for the z-part when no
/// conjunct mentions `z`; classification demands **exactly one** mention
/// ("P(x, z) contains only one occurrence of z", Section 4) — with more,
/// the whole conjunction is returned as the z-part so it classifies as
/// requiring grouping.
pub fn split_on_z(pred: &ScalarExpr, z: &str) -> (Option<ScalarExpr>, Vec<ScalarExpr>) {
    let conjuncts = conjuncts(pred);
    let (with_z, without_z): (Vec<_>, Vec<_>) = conjuncts.into_iter().partition(|c| c.mentions(z));
    match with_z.len() {
        0 => (None, without_z),
        1 => (
            Some(with_z.into_iter().next().expect("len is 1")),
            without_z,
        ),
        _ => (Some(ScalarExpr::conj(with_z)), without_z),
    }
}

fn conjuncts(pred: &ScalarExpr) -> Vec<ScalarExpr> {
    match pred {
        ScalarExpr::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// Classify a predicate with respect to the subquery variable `z`.
pub fn classify(pred: &ScalarExpr, z: &str) -> Classification {
    if !pred.mentions(z) {
        return Classification::Independent;
    }
    classify_pos(pred, z)
}

/// Classification under positive polarity; negation flips the result.
fn classify_pos(pred: &ScalarExpr, z: &str) -> Classification {
    let v = || ScalarExpr::var(FRESH_VAR);
    match pred {
        // ¬P: classify P and flip (∃ ↔ ¬∃). Grouping stays grouping —
        // negation does not make a whole-set predicate scannable.
        ScalarExpr::Not(inner) => classify_pos(inner, z).negate(),

        // Already in calculus form: (¬)∃v ∈ z (P') with arbitrary P' —
        // Theorem 1 explicitly allows any body, so accept directly
        // (the body must not mention z again).
        ScalarExpr::Quant {
            q,
            var,
            over,
            pred: body,
        } if **over == ScalarExpr::Var(z.into()) => {
            if body.mentions(z) {
                return Classification::RequiresGrouping;
            }
            let renamed = body.substitute(var, &v());
            // Rename the bound variable to the canonical fresh name. If the
            // body shadows our fresh name something is off; be conservative.
            if body.mentions(FRESH_VAR) {
                return Classification::RequiresGrouping;
            }
            match q {
                Quantifier::Exists => Classification::Existential { pred: renamed },
                // ∀v ∈ z (P') ≡ ¬∃v ∈ z (¬P').
                Quantifier::Forall => Classification::NegatedExistential {
                    pred: ScalarExpr::not(renamed),
                },
            }
        }

        // Quantifier over a z-free set S whose body tests membership of the
        // bound variable in z — Table 2's quantified spellings of the
        // intersection predicates:
        //   ∀w ∈ S (w ∉ z) ≡ S ∩ z = ∅ ≡ ¬∃v ∈ z (v ∈ S)
        //   ∃w ∈ S (w ∈ z) ≡ S ∩ z ≠ ∅ ≡ ∃v ∈ z (v ∈ S)
        // (∀w ∈ S (w ∈ z) is S ⊆ z and ∃w ∈ S (w ∉ z) is S ⊈ z — both need
        // grouping, handled by the fallthrough.)
        ScalarExpr::Quant {
            q,
            var,
            over,
            pred: body,
        } if !over.mentions(z) => {
            let member =
                ScalarExpr::set_cmp(SetCmpOp::In, ScalarExpr::var(FRESH_VAR), (**over).clone());
            match (q, &**body) {
                (Quantifier::Forall, ScalarExpr::SetCmp(SetCmpOp::NotIn, w, zz))
                    if **w == ScalarExpr::Var(var.clone()) && **zz == ScalarExpr::Var(z.into()) =>
                {
                    Classification::NegatedExistential { pred: member }
                }
                (Quantifier::Exists, ScalarExpr::SetCmp(SetCmpOp::In, w, zz))
                    if **w == ScalarExpr::Var(var.clone()) && **zz == ScalarExpr::Var(z.into()) =>
                {
                    Classification::Existential { pred: member }
                }
                _ => Classification::RequiresGrouping,
            }
        }

        ScalarExpr::SetCmp(op, lhs, rhs) => classify_set_cmp(*op, lhs, rhs, z),

        ScalarExpr::Cmp(op, lhs, rhs) => classify_cmp(*op, lhs, rhs, z),

        // Anything else that mentions z (arithmetic over aggregates,
        // disjunctions, z used as a set constructor argument, ...) needs
        // the whole set.
        _ => Classification::RequiresGrouping,
    }
}

/// Set-comparison rows of Table 2.
fn classify_set_cmp(op: SetCmpOp, lhs: &ScalarExpr, rhs: &ScalarExpr, z: &str) -> Classification {
    let zvar = ScalarExpr::Var(z.to_string());
    let v = || ScalarExpr::var(FRESH_VAR);

    // Normalize so that z is alone on the *right* where the operator is
    // symmetric or has a mirror (a ⊆ z ↔ z ⊇ a).
    let (op, a) = if *rhs == zvar && !lhs.mentions(z) {
        (op, lhs.clone())
    } else if *lhs == zvar && !rhs.mentions(z) {
        let mirrored = match op {
            SetCmpOp::SubsetEq => SetCmpOp::SupersetEq,
            SetCmpOp::Subset => SetCmpOp::Superset,
            SetCmpOp::SupersetEq => SetCmpOp::SubsetEq,
            SetCmpOp::Superset => SetCmpOp::Subset,
            // =, ≠, disjointness are symmetric; ∈/∉ have no mirror with z
            // as the *element* — that calls for the whole set.
            SetCmpOp::SetEq | SetCmpOp::SetNe | SetCmpOp::Disjoint | SetCmpOp::Intersects => op,
            SetCmpOp::In | SetCmpOp::NotIn => return Classification::RequiresGrouping,
        };
        (mirrored, rhs.clone())
    } else {
        // z nested deeper inside one of the operands.
        return Classification::RequiresGrouping;
    };

    match op {
        // x.a ∈ z ≡ ∃v ∈ z (v = x.a) — Table 2.
        SetCmpOp::In => Classification::Existential {
            pred: ScalarExpr::eq(v(), a),
        },
        // x.a ∉ z ≡ ¬∃v ∈ z (v = x.a) — Table 2.
        SetCmpOp::NotIn => Classification::NegatedExistential {
            pred: ScalarExpr::eq(v(), a),
        },
        // x.a ⊇ z ≡ ¬∃v ∈ z (v ∉ x.a) — Table 2.
        SetCmpOp::SupersetEq => Classification::NegatedExistential {
            pred: ScalarExpr::set_cmp(SetCmpOp::NotIn, v(), a),
        },
        // z = ∅ ≡ ¬∃v ∈ z (true); z ≠ ∅ ≡ ∃v ∈ z (true) — Table 2.
        SetCmpOp::SetEq if is_empty_set_expr(&a) => Classification::NegatedExistential {
            pred: ScalarExpr::lit(true),
        },
        SetCmpOp::SetNe if is_empty_set_expr(&a) => Classification::Existential {
            pred: ScalarExpr::lit(true),
        },
        // x.a ∩ z = ∅ ≡ ¬∃v ∈ z (v ∈ x.a); ≠ ∅ ≡ ∃v ∈ z (v ∈ x.a) — Table 2.
        SetCmpOp::Disjoint => Classification::NegatedExistential {
            pred: ScalarExpr::set_cmp(SetCmpOp::In, v(), a),
        },
        SetCmpOp::Intersects => Classification::Existential {
            pred: ScalarExpr::set_cmp(SetCmpOp::In, v(), a),
        },
        // x.a ⊆ z (the SUBSETEQ bug predicate), x.a ⊂ z, x.a ⊃ z,
        // x.a = z, x.a ≠ z: the subquery result is needed as a whole —
        // Table 2 lists all of these as requiring grouping.
        SetCmpOp::SubsetEq
        | SetCmpOp::Subset
        | SetCmpOp::Superset
        | SetCmpOp::SetEq
        | SetCmpOp::SetNe => Classification::RequiresGrouping,
    }
}

/// Atomic-comparison rows: aggregates between query blocks.
fn classify_cmp(op: CmpOp, lhs: &ScalarExpr, rhs: &ScalarExpr, z: &str) -> Classification {
    // Normalize to `a OP H(z)` with z on the right.
    let (op, a, agg) = match (extract_agg(lhs, z), extract_agg(rhs, z)) {
        (None, Some(f)) if !lhs.mentions(z) => (op, lhs.clone(), f),
        (Some(f), None) if !rhs.mentions(z) => (op.flip(), rhs.clone(), f),
        _ => return Classification::RequiresGrouping,
    };
    let v = || ScalarExpr::var(FRESH_VAR);
    match agg {
        AggFn::Count => {
            // Only the ∅-detecting comparisons are grouping-free:
            //   count(z) = 0 ≡ ¬∃v ∈ z (true)        (Table 2)
            //   count(z) ≠ 0, count(z) > 0, count(z) ≥ 1 ≡ ∃v ∈ z (true)
            //   count(z) ≤ 0, count(z) < 1 ≡ ¬∃v ∈ z (true)
            // A genuine `x.a = count(z)` requires the cardinality — the
            // COUNT bug row of Table 2.
            let zero = ScalarExpr::lit(0i64);
            let one = ScalarExpr::lit(1i64);
            let t = ScalarExpr::lit(true);
            match (&a, op) {
                (a, CmpOp::Eq) if *a == zero => Classification::NegatedExistential { pred: t },
                (a, CmpOp::Ne) if *a == zero => Classification::Existential { pred: t },
                // 0 < count(z) / 1 ≤ count(z)
                (a, CmpOp::Lt) if *a == zero => Classification::Existential { pred: t },
                (a, CmpOp::Le) if *a == one => Classification::Existential { pred: t },
                // 0 ≥ count(z) / 1 > count(z)
                (a, CmpOp::Ge) if *a == zero => Classification::NegatedExistential { pred: t },
                (a, CmpOp::Gt) if *a == one => Classification::NegatedExistential { pred: t },
                _ => Classification::RequiresGrouping,
            }
        }
        // Extensions beyond Table 2 (sound under the model's convention
        // that MIN/MAX of ∅ is NULL, which fails every comparison — the
        // same truth table as ∃ over ∅):
        //   a < max(z)  ≡ ∃v ∈ z (a < v)      a ≤ max(z) ≡ ∃v ∈ z (a ≤ v)
        //   a > min(z)  ≡ ∃v ∈ z (a > v)      a ≥ min(z) ≡ ∃v ∈ z (a ≥ v)
        AggFn::Max => match op {
            CmpOp::Lt | CmpOp::Le => Classification::Existential {
                pred: ScalarExpr::cmp(op, a, v()),
            },
            _ => Classification::RequiresGrouping,
        },
        AggFn::Min => match op {
            CmpOp::Gt | CmpOp::Ge => Classification::Existential {
                pred: ScalarExpr::cmp(op, a, v()),
            },
            _ => Classification::RequiresGrouping,
        },
        // SUM/AVG always need the whole set.
        AggFn::Sum | AggFn::Avg => Classification::RequiresGrouping,
    }
}

/// The empty set, in either of its spellings (`Lit(∅)` from builders,
/// `SetLit([])` from the parser's `{}`).
fn is_empty_set_expr(e: &ScalarExpr) -> bool {
    match e {
        ScalarExpr::Lit(Value::Set(s)) => s.is_empty(),
        ScalarExpr::SetLit(items) => items.is_empty(),
        _ => false,
    }
}

/// If `e` is `H(z)` for an aggregate H directly over the variable `z`,
/// return H.
fn extract_agg(e: &ScalarExpr, z: &str) -> Option<AggFn> {
    match e {
        ScalarExpr::Agg(f, inner) if **inner == ScalarExpr::Var(z.to_string()) => Some(*f),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::ScalarExpr as E;

    fn xa() -> E {
        E::path("x", &["a"])
    }

    fn zv() -> E {
        E::var("z")
    }

    #[test]
    fn membership_is_existential() {
        let c = classify(&E::set_cmp(SetCmpOp::In, xa(), zv()), "z");
        assert_eq!(
            c,
            Classification::Existential {
                pred: E::eq(E::var(FRESH_VAR), xa())
            }
        );
        let c = classify(&E::set_cmp(SetCmpOp::NotIn, xa(), zv()), "z");
        assert!(matches!(c, Classification::NegatedExistential { .. }));
    }

    #[test]
    fn negation_flips() {
        let c = classify(&E::not(E::set_cmp(SetCmpOp::In, xa(), zv())), "z");
        assert!(matches!(c, Classification::NegatedExistential { .. }));
        let c = classify(&E::not(E::not(E::set_cmp(SetCmpOp::In, xa(), zv()))), "z");
        assert!(matches!(c, Classification::Existential { .. }));
    }

    #[test]
    fn subseteq_needs_grouping_but_superseteq_does_not() {
        // The asymmetry at the heart of Sections 4 and 7.
        let sub = classify(&E::set_cmp(SetCmpOp::SubsetEq, xa(), zv()), "z");
        assert_eq!(sub, Classification::RequiresGrouping);
        let sup = classify(&E::set_cmp(SetCmpOp::SupersetEq, xa(), zv()), "z");
        assert!(matches!(sup, Classification::NegatedExistential { .. }));
    }

    #[test]
    fn side_mirroring() {
        // z ⊇ x.a ≡ x.a ⊆ z → grouping; z ⊆ x.a ≡ x.a ⊇ z → antijoin.
        let g = classify(&E::set_cmp(SetCmpOp::SupersetEq, zv(), xa()), "z");
        assert_eq!(g, Classification::RequiresGrouping);
        let ok = classify(&E::set_cmp(SetCmpOp::SubsetEq, zv(), xa()), "z");
        assert!(matches!(ok, Classification::NegatedExistential { .. }));
    }

    #[test]
    fn z_as_element_needs_grouping() {
        // z ∈ x.a compares the whole set z.
        let c = classify(&E::set_cmp(SetCmpOp::In, zv(), xa()), "z");
        assert_eq!(c, Classification::RequiresGrouping);
    }

    #[test]
    fn emptiness_tests() {
        let c = classify(
            &E::set_cmp(SetCmpOp::SetEq, zv(), E::Lit(Value::empty_set())),
            "z",
        );
        assert_eq!(c, Classification::NegatedExistential { pred: E::lit(true) });
        let c = classify(
            &E::set_cmp(SetCmpOp::SetNe, zv(), E::Lit(Value::empty_set())),
            "z",
        );
        assert_eq!(c, Classification::Existential { pred: E::lit(true) });
        // z = {1} (non-empty literal) needs the whole set.
        let c = classify(
            &E::set_cmp(SetCmpOp::SetEq, zv(), E::SetLit(vec![E::lit(1i64)])),
            "z",
        );
        assert_eq!(c, Classification::RequiresGrouping);
    }

    #[test]
    fn count_comparisons() {
        let count = || E::agg(AggFn::Count, zv());
        // count(z) = 0 → antijoin.
        let c = classify(&E::cmp(CmpOp::Eq, count(), E::lit(0i64)), "z");
        assert_eq!(c, Classification::NegatedExistential { pred: E::lit(true) });
        // 0 = count(z) — flipped side.
        let c = classify(&E::cmp(CmpOp::Eq, E::lit(0i64), count()), "z");
        assert_eq!(c, Classification::NegatedExistential { pred: E::lit(true) });
        // count(z) > 0 → semijoin.
        let c = classify(&E::cmp(CmpOp::Gt, count(), E::lit(0i64)), "z");
        assert_eq!(c, Classification::Existential { pred: E::lit(true) });
        // count(z) ≥ 1 → semijoin (flip handling: 1 ≤ count(z)).
        let c = classify(&E::cmp(CmpOp::Ge, count(), E::lit(1i64)), "z");
        assert_eq!(c, Classification::Existential { pred: E::lit(true) });
        // The COUNT bug row: x.a = count(z) needs grouping.
        let c = classify(&E::cmp(CmpOp::Eq, xa(), count()), "z");
        assert_eq!(c, Classification::RequiresGrouping);
    }

    #[test]
    fn min_max_extensions() {
        let maxz = E::agg(AggFn::Max, zv());
        let c = classify(&E::cmp(CmpOp::Lt, xa(), maxz.clone()), "z");
        assert_eq!(
            c,
            Classification::Existential {
                pred: E::cmp(CmpOp::Lt, xa(), E::var(FRESH_VAR))
            }
        );
        // max(z) > x.a flips to x.a < max(z).
        let c = classify(&E::cmp(CmpOp::Gt, maxz.clone(), xa()), "z");
        assert!(matches!(c, Classification::Existential { .. }));
        // x.a = max(z) genuinely needs the whole set.
        let c = classify(&E::cmp(CmpOp::Eq, xa(), maxz), "z");
        assert_eq!(c, Classification::RequiresGrouping);
        let minz = E::agg(AggFn::Min, zv());
        let c = classify(&E::cmp(CmpOp::Gt, xa(), minz), "z");
        assert!(matches!(c, Classification::Existential { .. }));
        // SUM is never scannable.
        let c = classify(&E::cmp(CmpOp::Lt, xa(), E::agg(AggFn::Sum, zv())), "z");
        assert_eq!(c, Classification::RequiresGrouping);
    }

    #[test]
    fn quantifier_forms_pass_through() {
        // ∃s ∈ z (s = x.a) — already Theorem 1 form, arbitrary body allowed.
        let q = E::quant(Quantifier::Exists, "s", zv(), E::eq(E::var("s"), xa()));
        let c = classify(&q, "z");
        let Classification::Existential { pred } = c else {
            panic!("existential expected")
        };
        assert!(pred.mentions(FRESH_VAR));
        assert!(!pred.mentions("s"), "bound var must be renamed");
        // ∀s ∈ z (s ≠ x.a) ≡ ¬∃s ∈ z (s = x.a).
        let q = E::quant(
            Quantifier::Forall,
            "s",
            zv(),
            E::cmp(CmpOp::Ne, E::var("s"), xa()),
        );
        assert!(matches!(
            classify(&q, "z"),
            Classification::NegatedExistential { .. }
        ));
    }

    #[test]
    fn independent_predicate() {
        assert_eq!(
            classify(&E::eq(xa(), E::lit(1i64)), "z"),
            Classification::Independent
        );
    }

    #[test]
    fn disjunction_with_z_is_conservative() {
        let p = E::or(
            E::eq(xa(), E::lit(1i64)),
            E::set_cmp(SetCmpOp::In, xa(), zv()),
        );
        assert_eq!(classify(&p, "z"), Classification::RequiresGrouping);
    }

    #[test]
    fn split_on_z_partitions_conjuncts() {
        let p = E::and(
            E::eq(xa(), E::lit(1i64)),
            E::set_cmp(SetCmpOp::In, E::path("x", &["b"]), zv()),
        );
        let (zpart, rest) = split_on_z(&p, "z");
        assert!(zpart.unwrap().mentions("z"));
        assert_eq!(rest.len(), 1);
        // No z at all.
        let (zpart, rest) = split_on_z(&E::lit(true), "z");
        assert!(zpart.is_none());
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn double_z_mention_requires_grouping() {
        // count(z) = count(z): silly, but must not misclassify.
        let c = classify(
            &E::cmp(
                CmpOp::Eq,
                E::agg(AggFn::Count, zv()),
                E::agg(AggFn::Count, zv()),
            ),
            "z",
        );
        assert_eq!(c, Classification::RequiresGrouping);
    }

    #[test]
    fn intersection_tests() {
        let c = classify(&E::set_cmp(SetCmpOp::Disjoint, xa(), zv()), "z");
        assert!(matches!(c, Classification::NegatedExistential { .. }));
        let c = classify(&E::set_cmp(SetCmpOp::Intersects, zv(), xa()), "z");
        assert!(matches!(c, Classification::Existential { .. }));
    }
}
