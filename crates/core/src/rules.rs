//! Algebraic rewrite rules around the nest join (Sections 5 and 6).
//!
//! Section 6 warns that the nest join "like the outerjoin, has less
//! pleasant algebraic properties" — it is neither commutative nor
//! associative — but lists equivalences that *do* hold. Those are
//! implemented here, plus the Section 5 `UNNEST`-collapse law. Each rule
//! is a standalone `Option`-returning function (so ablation benchmarks can
//! toggle them individually); [`cleanup`] applies the always-beneficial
//! ones to a fixpoint.

use std::collections::BTreeSet;

use tmql_algebra::rewrite::{fixpoint, take_children, with_children};
use tmql_algebra::{Plan, ScalarExpr};

/// `π_X(X Δ Y) = X` (Section 6): projecting a nest join onto the left
/// operand's variables drops the nest join entirely — the nest join
/// preserves left tuples exactly.
pub fn project_nestjoin_elim(plan: &Plan) -> Option<Plan> {
    let Plan::Project { input, vars } = plan else {
        return None;
    };
    let Plan::NestJoin { left, label, .. } = &**input else {
        return None;
    };
    if vars.contains(label) {
        return None;
    }
    let left_vars: BTreeSet<String> = left.output_vars().into_iter().collect();
    if !vars.iter().all(|v| left_vars.contains(v)) {
        return None;
    }
    Some(if *vars == left.output_vars() {
        (**left).clone()
    } else {
        Plan::Project {
            input: left.clone(),
            vars: vars.clone(),
        }
    })
}

/// Selection pushdown through the nest join's left operand:
/// `σ_p(X Δ Y) = σ_p(X) Δ Y` when `p` references only `X`'s variables.
/// (Pushing into the right operand is **not** sound in general — dangling
/// left tuples must still appear with ∅.)
pub fn select_pushdown_nestjoin(plan: &Plan) -> Option<Plan> {
    let Plan::Select { input, pred } = plan else {
        return None;
    };
    let Plan::NestJoin {
        left,
        right,
        pred: q,
        func,
        label,
    } = &**input
    else {
        return None;
    };
    let left_vars: BTreeSet<String> = left.output_vars().into_iter().collect();
    if !pred.free_vars().is_subset(&left_vars) {
        return None;
    }
    Some(Plan::NestJoin {
        left: Box::new(Plan::Select {
            input: left.clone(),
            pred: pred.clone(),
        }),
        right: right.clone(),
        pred: q.clone(),
        func: func.clone(),
        label: label.clone(),
    })
}

/// Selection pushdown through regular joins (left side; the symmetric
/// right-side push follows by the join's symmetry) and through
/// semi/antijoins (left side only).
pub fn select_pushdown_join(plan: &Plan) -> Option<Plan> {
    let Plan::Select { input, pred } = plan else {
        return None;
    };
    match &**input {
        Plan::Join {
            left,
            right,
            pred: q,
        } => {
            let lv: BTreeSet<String> = left.output_vars().into_iter().collect();
            let rv: BTreeSet<String> = right.output_vars().into_iter().collect();
            let fv = pred.free_vars();
            if fv.is_subset(&lv) {
                Some(Plan::Join {
                    left: Box::new(Plan::Select {
                        input: left.clone(),
                        pred: pred.clone(),
                    }),
                    right: right.clone(),
                    pred: q.clone(),
                })
            } else if fv.is_subset(&rv) {
                Some(Plan::Join {
                    left: left.clone(),
                    right: Box::new(Plan::Select {
                        input: right.clone(),
                        pred: pred.clone(),
                    }),
                    pred: q.clone(),
                })
            } else {
                None
            }
        }
        Plan::SemiJoin {
            left,
            right,
            pred: q,
        } => {
            let lv: BTreeSet<String> = left.output_vars().into_iter().collect();
            pred.free_vars().is_subset(&lv).then(|| Plan::SemiJoin {
                left: Box::new(Plan::Select {
                    input: left.clone(),
                    pred: pred.clone(),
                }),
                right: right.clone(),
                pred: q.clone(),
            })
        }
        Plan::AntiJoin {
            left,
            right,
            pred: q,
        } => {
            let lv: BTreeSet<String> = left.output_vars().into_iter().collect();
            pred.free_vars().is_subset(&lv).then(|| Plan::AntiJoin {
                left: Box::new(Plan::Select {
                    input: left.clone(),
                    pred: pred.clone(),
                }),
                right: right.clone(),
                pred: q.clone(),
            })
        }
        _ => None,
    }
}

/// Section 6, second equivalence:
/// `(X ⋈_{r(x,y)} Y) Δ_{r(x,z)} Z ≡ (X Δ_{r(x,z)} Z) ⋈_{r(x,y)} Y`.
/// The nest join slides below a join when its predicate and function only
/// touch the join's left operand.
pub fn nestjoin_join_interchange(plan: &Plan) -> Option<Plan> {
    let Plan::NestJoin {
        left,
        right: z_plan,
        pred: p2,
        func,
        label,
    } = plan
    else {
        return None;
    };
    let Plan::Join {
        left: x_plan,
        right: y_plan,
        pred: p1,
    } = &**left
    else {
        return None;
    };
    let xv: BTreeSet<String> = x_plan.output_vars().into_iter().collect();
    let zv: BTreeSet<String> = z_plan.output_vars().into_iter().collect();
    let allowed: BTreeSet<String> = xv.union(&zv).cloned().collect();
    if !p2.free_vars().is_subset(&allowed) || !func.free_vars().is_subset(&allowed) {
        return None;
    }
    Some(Plan::Join {
        left: Box::new(Plan::NestJoin {
            left: x_plan.clone(),
            right: z_plan.clone(),
            pred: p2.clone(),
            func: func.clone(),
            label: label.clone(),
        }),
        right: y_plan.clone(),
        pred: p1.clone(),
    })
}

/// Section 6, third equivalence:
/// `(X ⋈_{r(x,y)} Y) Δ_{r(y,z)} Z ≡ X ⋈_{r(x,y)} (Y Δ_{r(y,z)} Z)`.
/// The nest join attaches to the join operand it actually references.
pub fn join_nestjoin_assoc(plan: &Plan) -> Option<Plan> {
    let Plan::NestJoin {
        left,
        right: z_plan,
        pred: p2,
        func,
        label,
    } = plan
    else {
        return None;
    };
    let Plan::Join {
        left: x_plan,
        right: y_plan,
        pred: p1,
    } = &**left
    else {
        return None;
    };
    let yv: BTreeSet<String> = y_plan.output_vars().into_iter().collect();
    let zv: BTreeSet<String> = z_plan.output_vars().into_iter().collect();
    let allowed: BTreeSet<String> = yv.union(&zv).cloned().collect();
    if !p2.free_vars().is_subset(&allowed) || !func.free_vars().is_subset(&allowed) {
        return None;
    }
    Some(Plan::Join {
        left: x_plan.clone(),
        right: Box::new(Plan::NestJoin {
            left: y_plan.clone(),
            right: z_plan.clone(),
            pred: p2.clone(),
            func: func.clone(),
            label: label.clone(),
        }),
        pred: p1.clone(),
    })
}

/// Section 5's special case: `UNNEST(SELECT (SELECT …) FROM X)` is a flat
/// join. Recognizes the translated shape
///
/// ```text
/// Unnest e ∈ m (drop m)
///   Map m := z
///     Apply z := (I, Map G (Select Q (R)))
/// ```
///
/// and rewrites it to `Map e := G (Join Q (I, R))`: the set-of-sets is
/// never built. Dangling `I` rows contributed ∅ to the union, so the
/// inner join loses nothing.
pub fn unnest_collapse(plan: &Plan) -> Option<Plan> {
    let Plan::Unnest {
        input,
        expr,
        elem_var,
        drop_vars,
    } = plan
    else {
        return None;
    };
    // Peel an optional Map m := z between Unnest and Apply.
    let (apply, set_var) = match &**input {
        Plan::Map {
            input: apply,
            expr: ScalarExpr::Var(z),
            var: m,
        } => {
            if *expr != ScalarExpr::var(m.clone()) || drop_vars != std::slice::from_ref(m) {
                return None;
            }
            (&**apply, z.clone())
        }
        other => {
            let ScalarExpr::Var(z) = expr else {
                return None;
            };
            (other, z.clone())
        }
    };
    let Plan::Apply {
        input: outer,
        subquery,
        label,
    } = apply
    else {
        return None;
    };
    if *label != set_var {
        return None;
    }
    // When unnesting directly over the Apply, every input variable must be
    // dropped (the collapse forgets which outer row an element came from).
    if !matches!(&**input, Plan::Map { .. }) {
        let mut required: Vec<String> = outer.output_vars();
        required.push(label.clone());
        let dropped: BTreeSet<&String> = drop_vars.iter().collect();
        if !required.iter().all(|v| dropped.contains(v)) {
            return None;
        }
    }
    let parts = crate::strategy::decompose_subquery(subquery)?;
    if !crate::strategy::decorrelatable(&parts) {
        return None;
    }
    Some(
        Plan::Join {
            left: outer.clone(),
            right: Box::new(parts.inner),
            pred: parts.q,
        }
        .map(parts.g, elem_var.clone()),
    )
}

/// Apply the always-beneficial rules (projection elimination, selection
/// pushdown, unnest collapse) bottom-up to a fixpoint.
pub fn cleanup(plan: Plan) -> Plan {
    fixpoint(plan, 8, &mut |node| {
        if let Some(p) = project_nestjoin_elim(&node) {
            return p;
        }
        if let Some(p) = select_pushdown_nestjoin(&node) {
            return p;
        }
        if let Some(p) = select_pushdown_join(&node) {
            return p;
        }
        if let Some(p) = unnest_collapse(&node) {
            return p;
        }
        node
    })
}

/// Re-exported transform utility for strategy implementations.
pub fn rebuild(plan: Plan, children: Vec<Plan>) -> Plan {
    let _ = take_children(&plan);
    with_children(plan, children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::{CmpOp, ScalarExpr as E};

    fn nj() -> Plan {
        Plan::scan("X", "x").nest_join(
            Plan::scan("Y", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            E::path("y", &["a"]),
            "ys",
        )
    }

    #[test]
    fn projection_eliminates_nestjoin() {
        let p = nj().project(&["x"]);
        let out = project_nestjoin_elim(&p).unwrap();
        assert_eq!(out, Plan::scan("X", "x"));
        // Keeping the label blocks the rule.
        let keep = nj().project(&["x", "ys"]);
        assert!(project_nestjoin_elim(&keep).is_none());
    }

    #[test]
    fn select_pushes_into_left_of_nestjoin() {
        let p = nj().select(E::cmp(CmpOp::Gt, E::path("x", &["a"]), E::lit(1i64)));
        let out = select_pushdown_nestjoin(&p).unwrap();
        let Plan::NestJoin { left, .. } = out else {
            panic!("nest join")
        };
        assert!(matches!(*left, Plan::Select { .. }));
        // Predicates over the label must not push.
        let blocked = nj().select(E::set_cmp(
            tmql_algebra::SetCmpOp::In,
            E::path("x", &["a"]),
            E::var("ys"),
        ));
        assert!(select_pushdown_nestjoin(&blocked).is_none());
    }

    #[test]
    fn join_pushdown_picks_side() {
        let j = Plan::scan("X", "x").join(
            Plan::scan("Y", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        );
        let left_pred = j
            .clone()
            .select(E::cmp(CmpOp::Gt, E::path("x", &["a"]), E::lit(0i64)));
        let out = select_pushdown_join(&left_pred).unwrap();
        let Plan::Join { left, .. } = out else {
            panic!()
        };
        assert!(matches!(*left, Plan::Select { .. }));
        let right_pred = j.select(E::cmp(CmpOp::Gt, E::path("y", &["c"]), E::lit(0i64)));
        let out = select_pushdown_join(&right_pred).unwrap();
        let Plan::Join { right, .. } = out else {
            panic!()
        };
        assert!(matches!(*right, Plan::Select { .. }));
    }

    #[test]
    fn interchange_requires_disjoint_reference() {
        // (X ⋈ Y) Δ Z with Δ-pred over x only: slides under.
        let xy = Plan::scan("X", "x").join(
            Plan::scan("Y", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        );
        let p = xy.nest_join(
            Plan::scan("Z", "z"),
            E::eq(E::path("x", &["c"]), E::path("z", &["c"])),
            E::var("z"),
            "zs",
        );
        let out = nestjoin_join_interchange(&p).unwrap();
        let Plan::Join { left, .. } = &out else {
            panic!("join root")
        };
        assert!(matches!(**left, Plan::NestJoin { .. }));
        // A Δ-pred referencing y blocks the interchange (but enables the
        // associativity form instead).
        let xy = Plan::scan("X", "x").join(
            Plan::scan("Y", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        );
        let p = xy.nest_join(
            Plan::scan("Z", "z"),
            E::eq(E::path("y", &["d"]), E::path("z", &["d"])),
            E::var("z"),
            "zs",
        );
        assert!(nestjoin_join_interchange(&p).is_none());
        let out = join_nestjoin_assoc(&p).unwrap();
        let Plan::Join { right, .. } = &out else {
            panic!("join root")
        };
        assert!(matches!(**right, Plan::NestJoin { .. }));
    }

    #[test]
    fn unnest_collapse_fires_on_translated_shape() {
        let sub = Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["a"])))
            .map(
                E::Tuple(vec![
                    ("a".into(), E::path("x", &["a"])),
                    ("b".into(), E::path("y", &["b"])),
                ]),
                "g",
            );
        let plan = Plan::Unnest {
            input: Box::new(Plan::scan("X", "x").apply(sub, "z").map(E::var("z"), "m")),
            expr: E::var("m"),
            elem_var: "u".into(),
            drop_vars: vec!["m".into()],
        };
        let out = unnest_collapse(&plan).unwrap();
        assert!(!out.has_apply());
        assert!(out.any_node(&mut |n| matches!(n, Plan::Join { .. })));
        let Plan::Map { var, .. } = out else {
            panic!("map root")
        };
        assert_eq!(var, "u");
    }

    #[test]
    fn cleanup_reaches_fixpoint() {
        // Stacked rules: select over nest join over join.
        let xy = Plan::scan("X", "x").join(
            Plan::scan("Y", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        );
        let p = xy
            .nest_join(
                Plan::scan("Z", "z"),
                E::eq(E::path("x", &["c"]), E::path("z", &["c"])),
                E::var("z"),
                "zs",
            )
            .select(E::cmp(CmpOp::Gt, E::path("x", &["a"]), E::lit(0i64)))
            .project(&["x"]);
        let out = cleanup(p);
        // Projection kills the nest join; selection pushes to X's scan.
        assert!(!out.has_nest_join());
    }
}
