//! The paper's **Table 2**: "Rewriting TM predicates".
//!
//! Table 2 catalogues predicate forms `P(x, z)` and their calculus
//! rewrites, separating SQL-expressible predicates (above the line) from
//! TM-specific predicates over set-valued attributes (below the line).
//! This module materializes the catalogue as data so that:
//!
//! * the classifier is tested against every row,
//! * the table itself can be regenerated (`render()`), and
//! * the differential test-suite can execute each row's predicate under
//!   every unnesting strategy.
//!
//! The machine-readable rows were reconstructed from the paper's (OCR-
//! degraded) table by semantic equivalence; each rewrite below is verified
//! executable-equivalent by the property tests in `tests/table2_exec.rs`.

use tmql_algebra::{AggFn, CmpOp, Quantifier, ScalarExpr, SetCmpOp};
use tmql_model::Value;

use crate::classify::{classify, Classification};

/// Whether a Table 2 row is SQL-expressible (above the separation line) or
/// TM-specific (below it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// Predicates that may occur in SQL (a subset of TM).
    Sql,
    /// Predicates involving set-valued attributes — TM only.
    Tm,
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Entry {
    /// Human-readable predicate form, paper notation.
    pub form: &'static str,
    /// Which language fragment the row belongs to.
    pub dialect: Dialect,
    /// The predicate, built over outer variable `x` (attribute `a`,
    /// set-valued where the form requires) and subquery variable `z`.
    pub pred: ScalarExpr,
    /// The expected classification.
    pub expected: Classification,
}

fn xa() -> ScalarExpr {
    ScalarExpr::path("x", &["a"])
}

fn z() -> ScalarExpr {
    ScalarExpr::var("z")
}

fn v() -> ScalarExpr {
    ScalarExpr::var(crate::classify::FRESH_VAR)
}

/// All rows of Table 2, in the paper's order. The rewrite column of the
/// paper maps onto [`Classification`]: `∃v ∈ z (...)` rows are
/// [`Classification::Existential`], `¬∃v ∈ z (...)` rows are
/// [`Classification::NegatedExistential`], rows without a rewrite require
/// grouping.
pub fn entries() -> Vec<Table2Entry> {
    use Classification::*;
    let t = || ScalarExpr::lit(true);
    vec![
        // ——— SQL-expressible rows ———
        Table2Entry {
            form: "z = ∅",
            dialect: Dialect::Sql,
            pred: ScalarExpr::set_cmp(SetCmpOp::SetEq, z(), ScalarExpr::Lit(Value::empty_set())),
            expected: NegatedExistential { pred: t() },
        },
        Table2Entry {
            form: "count(z) = 0",
            dialect: Dialect::Sql,
            pred: ScalarExpr::cmp(
                CmpOp::Eq,
                ScalarExpr::agg(AggFn::Count, z()),
                ScalarExpr::lit(0i64),
            ),
            expected: NegatedExistential { pred: t() },
        },
        Table2Entry {
            form: "count(z) ≠ 0",
            dialect: Dialect::Sql,
            pred: ScalarExpr::cmp(
                CmpOp::Ne,
                ScalarExpr::agg(AggFn::Count, z()),
                ScalarExpr::lit(0i64),
            ),
            expected: Existential { pred: t() },
        },
        Table2Entry {
            form: "x.a = count(z)",
            dialect: Dialect::Sql,
            pred: ScalarExpr::cmp(CmpOp::Eq, xa(), ScalarExpr::agg(AggFn::Count, z())),
            expected: RequiresGrouping,
        },
        Table2Entry {
            form: "x.a ∈ z",
            dialect: Dialect::Sql,
            pred: ScalarExpr::set_cmp(SetCmpOp::In, xa(), z()),
            expected: Existential {
                pred: ScalarExpr::eq(v(), xa()),
            },
        },
        Table2Entry {
            form: "x.a ∉ z",
            dialect: Dialect::Sql,
            pred: ScalarExpr::set_cmp(SetCmpOp::NotIn, xa(), z()),
            expected: NegatedExistential {
                pred: ScalarExpr::eq(v(), xa()),
            },
        },
        // ——— TM-specific rows (set-valued x.a) ———
        Table2Entry {
            form: "x.a ⊆ z",
            dialect: Dialect::Tm,
            pred: ScalarExpr::set_cmp(SetCmpOp::SubsetEq, xa(), z()),
            expected: RequiresGrouping,
        },
        Table2Entry {
            form: "x.a ⊂ z",
            dialect: Dialect::Tm,
            pred: ScalarExpr::set_cmp(SetCmpOp::Subset, xa(), z()),
            expected: RequiresGrouping,
        },
        Table2Entry {
            form: "x.a ⊇ z",
            dialect: Dialect::Tm,
            pred: ScalarExpr::set_cmp(SetCmpOp::SupersetEq, xa(), z()),
            expected: NegatedExistential {
                pred: ScalarExpr::set_cmp(SetCmpOp::NotIn, v(), xa()),
            },
        },
        Table2Entry {
            form: "x.a ⊃ z",
            dialect: Dialect::Tm,
            pred: ScalarExpr::set_cmp(SetCmpOp::Superset, xa(), z()),
            expected: RequiresGrouping,
        },
        Table2Entry {
            form: "x.a = z",
            dialect: Dialect::Tm,
            pred: ScalarExpr::set_cmp(SetCmpOp::SetEq, xa(), z()),
            expected: RequiresGrouping,
        },
        Table2Entry {
            form: "x.a ≠ z",
            dialect: Dialect::Tm,
            pred: ScalarExpr::set_cmp(SetCmpOp::SetNe, xa(), z()),
            expected: RequiresGrouping,
        },
        Table2Entry {
            form: "x.a ∩ z = ∅",
            dialect: Dialect::Tm,
            pred: ScalarExpr::set_cmp(SetCmpOp::Disjoint, xa(), z()),
            expected: NegatedExistential {
                pred: ScalarExpr::set_cmp(SetCmpOp::In, v(), xa()),
            },
        },
        Table2Entry {
            form: "x.a ∩ z ≠ ∅",
            dialect: Dialect::Tm,
            pred: ScalarExpr::set_cmp(SetCmpOp::Intersects, xa(), z()),
            expected: Existential {
                pred: ScalarExpr::set_cmp(SetCmpOp::In, v(), xa()),
            },
        },
        Table2Entry {
            form: "∀w ∈ x.a (w ∈ z)",
            dialect: Dialect::Tm,
            pred: ScalarExpr::quant(
                Quantifier::Forall,
                "w",
                xa(),
                ScalarExpr::set_cmp(SetCmpOp::In, ScalarExpr::var("w"), z()),
            ),
            // ≡ x.a ⊆ z: the quantifier ranges over x.a, not z, so the
            // inner membership still needs the whole subquery result.
            expected: RequiresGrouping,
        },
        Table2Entry {
            form: "∀w ∈ x.a (w ∉ z)",
            dialect: Dialect::Tm,
            pred: ScalarExpr::quant(
                Quantifier::Forall,
                "w",
                xa(),
                ScalarExpr::set_cmp(SetCmpOp::NotIn, ScalarExpr::var("w"), z()),
            ),
            // ≡ x.a ∩ z = ∅ ≡ ¬∃v ∈ z (v ∈ x.a) — the quantified spelling
            // of disjointness, rewritten per Table 2.
            expected: NegatedExistential {
                pred: ScalarExpr::set_cmp(SetCmpOp::In, v(), xa()),
            },
        },
    ]
}

/// Render the reproduced Table 2 in the paper's two-column layout.
pub fn render() -> String {
    let rows = entries();
    let mut out = String::new();
    out.push_str(&format!("{:<22} | {}\n", "P(x, z)", "rewrite"));
    out.push_str(&format!("{:-<22}-+-{:-<40}\n", "", ""));
    let mut last_dialect = Dialect::Sql;
    for e in rows {
        if e.dialect != last_dialect {
            out.push_str(&format!("{:-<22}-+-{:-<40}\n", "", ""));
            last_dialect = e.dialect;
        }
        let rewrite = match classify(&e.pred, "z") {
            Classification::Existential { pred } => format!("∃v ∈ z ({pred})"),
            Classification::NegatedExistential { pred } => format!("¬∃v ∈ z ({pred})"),
            Classification::RequiresGrouping => "— (grouping required)".to_string(),
            Classification::Independent => "independent of z".to_string(),
        };
        out.push_str(&format!("{:<22} | {}\n", e.form, rewrite));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_classifies_as_the_paper_says() {
        for e in entries() {
            let got = classify(&e.pred, "z");
            assert_eq!(got, e.expected, "row `{}`", e.form);
        }
    }

    #[test]
    fn row_counts_and_dialect_split() {
        let rows = entries();
        assert_eq!(rows.len(), 16);
        let sql = rows.iter().filter(|e| e.dialect == Dialect::Sql).count();
        assert_eq!(sql, 6, "six SQL-expressible rows above the line");
    }

    #[test]
    fn grouping_free_rows_match_paper() {
        // Exactly these forms avoid grouping.
        let free: Vec<&str> = entries()
            .iter()
            .filter(|e| e.expected.avoids_grouping())
            .map(|e| e.form)
            .collect();
        assert_eq!(
            free,
            vec![
                "z = ∅",
                "count(z) = 0",
                "count(z) ≠ 0",
                "x.a ∈ z",
                "x.a ∉ z",
                "x.a ⊇ z",
                "x.a ∩ z = ∅",
                "x.a ∩ z ≠ ∅",
                "∀w ∈ x.a (w ∉ z)",
            ]
        );
    }

    #[test]
    fn render_contains_both_sections() {
        let s = render();
        assert!(s.contains("x.a ⊆ z"), "{s}");
        assert!(s.contains("grouping required"), "{s}");
        assert!(s.contains("∃v ∈ z"), "{s}");
    }
}
