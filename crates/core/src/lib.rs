#![deny(missing_docs)]

//! # tmql-core — optimization of nested queries (the paper's contribution)
//!
//! This crate implements the central results of Steenhagen, Apers & Blanken,
//! *Optimization of Nested Queries in a Complex Object Model* (EDBT 1994):
//!
//! * [`mod@classify`] — the rewrite analysis behind **Theorem 1** (Section 7):
//!   a nested predicate `P(x, z)` needs **no grouping** iff it can be
//!   rewritten into `∃v ∈ z (P'(x, v))` or `¬∃v ∈ z (P'(x, v))`; the
//!   classifier performs exactly these rewrites, covering (and extending)
//!   the catalogue of **Table 2** ([`table2`]);
//! * [`strategy`] — the unnesting strategies compared in the paper:
//!   * [`strategy::UnnestStrategy::NestedLoop`] — keep the correlated
//!     `Apply` (the paper's always-correct but "very inefficient" baseline),
//!   * [`strategy::UnnestStrategy::Kim`] — Kim's algorithm [Kim 82],
//!     **deliberately bug-compatible**: it loses dangling outer tuples,
//!     reproducing the COUNT bug and its complex-object generalizations,
//!   * [`strategy::UnnestStrategy::GanskiWong`] — the relational repair
//!     [Ganski & Wong 87]: outerjoin + ν* grouping over NULLs,
//!   * [`strategy::UnnestStrategy::NestJoin`] — the paper's **nest join**:
//!     grouping during the join, ∅ for dangling tuples, no NULLs,
//!   * [`strategy::UnnestStrategy::FlattenSemiAnti`] — Theorem 1 flattening
//!     into semijoin/antijoin with join predicate `P'(x, G(x,y)) ∧ Q(x,y)`,
//!   * [`strategy::UnnestStrategy::Optimal`] — the paper's full pipeline
//!     (Section 8): flatten where Theorem 1 allows, nest join elsewhere,
//!   * [`strategy::UnnestStrategy::CostBased`] — per-block candidate
//!     enumeration ranked by a [`CostModel`] over storage statistics
//!     (the deployed-optimizer refinement of the Section 8 pipeline);
//! * [`rules`] — the algebraic properties of the nest join from Section 6
//!   (`π_X(X Δ Y) = X`, the Δ/⋈ interchange laws, selection pushdown) and
//!   the Section 5 `UNNEST`-collapse equivalence;
//! * [`theorem1`] — the grouping decision procedure and its documentation.

pub mod classify;
pub mod optimizer;
pub mod rules;
pub mod strategy;
pub mod table2;
pub mod theorem1;

pub use classify::{classify, Classification};
pub use optimizer::{unnest_plan, unnest_plan_with, CostModel, Optimizer};
pub use strategy::UnnestStrategy;
pub use theorem1::needs_grouping;

pub use tmql_model::{ModelError, Result};
