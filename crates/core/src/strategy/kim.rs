//! Kim's unnesting algorithm [Kim 82], as surveyed in Section 2 —
//! **deliberately bug-compatible**.
//!
//! For an aggregate predicate (`x.b = count(z)`, Kim's type JA) the block
//! becomes
//!
//! ```text
//! (1)  T := γ_{keys; agg}(R)                 -- group + aggregate first
//!      I ⋈_{x.c = t.c ∧ P[H(z) ↦ t.agg]} T   -- then a regular join
//! ```
//!
//! For the complex-object predicates that need grouping (`x.a ⊆ z`, …) the
//! analogous transformation nests the inner operand first (the ν-based
//! variant the paper shows in Section 4):
//!
//! ```text
//! T := ν_{keys; z}(R)
//! I ⋈_{x.b = t.b ∧ P(x, z)} T
//! ```
//!
//! Both variants share the flaw exposed by [Kiessling 84]: `T` contains a
//! group **only for inner values that exist**, and the final regular join
//! drops dangling `I` tuples — the COUNT bug (`x.b = 0` rows vanish) and
//! the paper's generalization, the SUBSETEQ bug (`x.a = ∅` rows vanish).
//! The bug is kept intact here so experiments E1/E2 can demonstrate and
//! measure it; see [`super::ganski_wong`] and [`super::nestjoin`] for the
//! fixes.
//!
//! Predicates already in Theorem 1 form (`x.a ∈ z`, Kim's types N/J) are
//! flattened via the semijoin path, which is correct (no grouping, no
//! bug) — matching Kim's original treatment of those types.

use std::collections::BTreeSet;

use tmql_algebra::{AggFn, CmpOp, Plan, ScalarExpr};

use crate::classify::{classify, split_on_z, Classification};

use super::{decompose_subquery, decorrelatable, replace_subexpr, rewrite_blocks, SubqueryParts};

/// Rewrite every decorrelatable block with Kim's algorithm.
pub fn rewrite(plan: Plan) -> Plan {
    rewrite_blocks(plan, &mut |pred, input, subquery, label| {
        rewrite_one(pred, input, subquery, label)
    })
}

/// Rewrite a single block. `None` leaves the block as a nested loop (Kim
/// has no transformation for correlated inner operands).
pub fn rewrite_one(
    pred: Option<&ScalarExpr>,
    input: &Plan,
    subquery: &Plan,
    label: &str,
) -> Option<Plan> {
    let parts = decompose_subquery(subquery)?;
    if !decorrelatable(&parts) {
        return None;
    }
    let Some(pred) = pred else {
        // SELECT-clause nesting: Kim's relational algorithm has no
        // equivalent (nested results are not relational); the join+ν
        // variant below still applies and still loses dangling tuples.
        return kim_nest_variant(&ScalarExpr::lit(true), &[], input, &parts, label);
    };
    let (zpart, rest) = split_on_z(pred, label);
    let zpart = match zpart {
        Some(p) => p,
        None => return Some(input.clone().select(ScalarExpr::conj(rest))),
    };

    // Types N/J: predicates that classify existential flatten to a plain
    // join + projection — Kim handled those correctly.
    if let Classification::Existential { pred: p_prime } = classify(&zpart, label) {
        let p_on_g = p_prime.substitute(crate::classify::FRESH_VAR, &parts.g);
        let join_pred = ScalarExpr::and(parts.q.clone(), p_on_g);
        let joined = input.clone().join(parts.inner.clone(), join_pred);
        // Kim projects back onto the outer relation's attributes; our
        // set-semantics Project both restores the arity and (unlike
        // SQL multisets) removes the duplicates Kim's paper disregards.
        let outer_vars: Vec<String> = input.output_vars();
        let projected = Plan::Project {
            input: Box::new(joined),
            vars: outer_vars,
        };
        return Some(if rest.is_empty() {
            projected
        } else {
            projected.select(ScalarExpr::conj(rest))
        });
    }

    // Aggregate between blocks (type JA): group-then-join.
    if let Some(agg) = find_unique_agg(&zpart, label) {
        return kim_agg_variant(&zpart, &rest, input, &parts, label, agg);
    }
    // Complex-object grouping predicates: nest-then-join.
    kim_nest_variant(&ScalarExpr::conj([zpart]), &rest, input, &parts, label)
}

/// Correlation analysis shared by both variants: split `Q` into equi pairs
/// `outer-expr = inner-expr` plus inner-only conjuncts (pushed into `R`).
/// Mixed non-equi conjuncts make Kim inapplicable.
pub(crate) struct Correlation {
    pub(crate) outer_keys: Vec<ScalarExpr>,
    pub(crate) inner_keys: Vec<ScalarExpr>,
    pub(crate) inner_plan: Plan,
}

pub(crate) fn correlation(input: &Plan, parts: &SubqueryParts) -> Option<Correlation> {
    let outer_vars: BTreeSet<String> = input.output_vars().into_iter().collect();
    let inner_vars: BTreeSet<String> = parts.inner.output_vars().into_iter().collect();
    let mut outer_keys = Vec::new();
    let mut inner_keys = Vec::new();
    let mut inner_resid = Vec::new();
    for c in conjuncts(&parts.q) {
        let fv = c.free_vars();
        if fv.is_subset(&inner_vars) {
            inner_resid.push(c);
            continue;
        }
        if let ScalarExpr::Cmp(CmpOp::Eq, a, b) = &c {
            let (fa, fb) = (a.free_vars(), b.free_vars());
            if fa.is_subset(&outer_vars) && fb.is_subset(&inner_vars) {
                outer_keys.push((**a).clone());
                inner_keys.push((**b).clone());
                continue;
            }
            if fb.is_subset(&outer_vars) && fa.is_subset(&inner_vars) {
                outer_keys.push((**b).clone());
                inner_keys.push((**a).clone());
                continue;
            }
        }
        // Correlation that is not a simple equi predicate: Kim's
        // algorithm does not apply.
        return None;
    }
    let inner_plan = if inner_resid.is_empty() {
        parts.inner.clone()
    } else {
        parts.inner.clone().select(ScalarExpr::conj(inner_resid))
    };
    Some(Correlation {
        outer_keys,
        inner_keys,
        inner_plan,
    })
}

fn conjuncts(e: &ScalarExpr) -> Vec<ScalarExpr> {
    match e {
        ScalarExpr::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        ScalarExpr::Lit(tmql_model::Value::Bool(true)) => vec![],
        other => vec![other.clone()],
    }
}

/// Kim variant (1) of Section 2: `T = γ(R)`, then join.
fn kim_agg_variant(
    zpart: &ScalarExpr,
    rest: &[ScalarExpr],
    input: &Plan,
    parts: &SubqueryParts,
    label: &str,
    agg: AggFn,
) -> Option<Plan> {
    let corr = correlation(input, parts)?;
    let tvar = format!("__t_{label}");
    let keys: Vec<(String, ScalarExpr)> = corr
        .inner_keys
        .iter()
        .enumerate()
        .map(|(i, e)| (format!("k{i}"), e.clone()))
        .collect();
    let t = Plan::GroupAgg {
        input: Box::new(corr.inner_plan),
        keys: keys.clone(),
        aggs: vec![("agg".to_string(), agg, parts.g.clone())],
        var: tvar.clone(),
    };
    // Join predicate: key equalities plus P with H(z) replaced by t.agg.
    let target = ScalarExpr::agg(agg, ScalarExpr::var(label));
    let p_sub = replace_subexpr(zpart, &target, &ScalarExpr::path(&tvar, &["agg"]));
    if p_sub.mentions(label) {
        // z occurs outside the aggregate too — mixed form, fall back.
        return kim_nest_variant(
            &ScalarExpr::conj([zpart.clone()]),
            rest,
            input,
            parts,
            label,
        );
    }
    let mut join_conjs: Vec<ScalarExpr> = corr
        .outer_keys
        .iter()
        .zip(&keys)
        .map(|(o, (kname, _))| {
            ScalarExpr::eq(o.clone(), ScalarExpr::var(&tvar).field(kname.clone()))
        })
        .collect();
    join_conjs.push(p_sub);
    let joined = input.clone().join(t, ScalarExpr::conj(join_conjs));
    Some(finish(joined, rest))
}

/// The ν-based variant of Section 4: `T = ν(R)`, then join. The nested-set
/// label reuses the block label so `P(x, z)` applies unchanged.
fn kim_nest_variant(
    zpart: &ScalarExpr,
    rest: &[ScalarExpr],
    input: &Plan,
    parts: &SubqueryParts,
    label: &str,
) -> Option<Plan> {
    let corr = correlation(input, parts)?;
    // Extend R with the key expressions as plain variables so ν can group
    // on them.
    let mut extended = corr.inner_plan;
    let mut key_vars = Vec::new();
    for (i, k) in corr.inner_keys.iter().enumerate() {
        let kname = format!("__k{i}_{label}");
        extended = extended.extend(k.clone(), kname.clone());
        key_vars.push(kname);
    }
    let t = Plan::Nest {
        input: Box::new(extended),
        keys: key_vars.clone(),
        value: parts.g.clone(),
        label: label.to_string(),
        star: false,
    };
    let mut join_conjs: Vec<ScalarExpr> = corr
        .outer_keys
        .iter()
        .zip(&key_vars)
        .map(|(o, k)| ScalarExpr::eq(o.clone(), ScalarExpr::var(k)))
        .collect();
    join_conjs.push(zpart.clone());
    let joined = input.clone().join(t, ScalarExpr::conj(join_conjs));
    Some(finish(joined, rest))
}

fn finish(plan: Plan, rest: &[ScalarExpr]) -> Plan {
    if rest.is_empty() {
        plan
    } else {
        plan.select(ScalarExpr::conj(rest.to_vec()))
    }
}

/// Find the aggregate `H(z)` if `zpart` contains exactly one aggregate
/// application over `z`.
pub(crate) fn find_unique_agg(e: &ScalarExpr, z: &str) -> Option<AggFn> {
    let mut found = Vec::new();
    collect_aggs(e, z, &mut found);
    match found.as_slice() {
        [one] => Some(*one),
        _ => None,
    }
}

fn collect_aggs(e: &ScalarExpr, z: &str, out: &mut Vec<AggFn>) {
    if let ScalarExpr::Agg(f, inner) = e {
        if **inner == ScalarExpr::Var(z.to_string()) {
            out.push(*f);
            return;
        }
    }
    match e {
        ScalarExpr::Field(a, _)
        | ScalarExpr::Not(a)
        | ScalarExpr::Agg(_, a)
        | ScalarExpr::Unnest(a)
        | ScalarExpr::IsNull(a) => collect_aggs(a, z, out),
        ScalarExpr::Cmp(_, a, b)
        | ScalarExpr::Arith(_, a, b)
        | ScalarExpr::And(a, b)
        | ScalarExpr::Or(a, b)
        | ScalarExpr::SetBin(_, a, b)
        | ScalarExpr::SetCmp(_, a, b) => {
            collect_aggs(a, z, out);
            collect_aggs(b, z, out);
        }
        ScalarExpr::Tuple(fs) => fs.iter().for_each(|(_, x)| collect_aggs(x, z, out)),
        ScalarExpr::SetLit(es) => es.iter().for_each(|x| collect_aggs(x, z, out)),
        ScalarExpr::Quant { over, pred, .. } => {
            collect_aggs(over, z, out);
            collect_aggs(pred, z, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::{ScalarExpr as E, SetCmpOp};

    fn sub() -> Plan {
        Plan::scan("S", "y")
            .select(E::eq(E::path("x", &["c"]), E::path("y", &["c"])))
            .map(E::path("y", &["d"]), "s")
    }

    #[test]
    fn count_query_becomes_group_then_join() {
        // SELECT * FROM R x WHERE x.b = COUNT(z), z = …
        let pred = E::eq(E::path("x", &["b"]), E::agg(AggFn::Count, E::var("z")));
        let p = Plan::scan("R", "x").apply(sub(), "z").select(pred);
        let out = rewrite(p);
        assert!(!out.has_apply());
        assert!(out.any_node(&mut |n| matches!(n, Plan::GroupAgg { .. })));
        assert!(out.any_node(&mut |n| matches!(n, Plan::Join { .. })));
        // No outerjoin, no nest join: that is exactly the bug.
        assert!(!out.any_node(&mut |n| matches!(n, Plan::LeftOuterJoin { .. })));
        assert!(!out.has_nest_join());
    }

    #[test]
    fn subseteq_query_becomes_nest_then_join() {
        let pred = E::set_cmp(SetCmpOp::SubsetEq, E::path("x", &["a"]), E::var("z"));
        let p = Plan::scan("R", "x").apply(sub(), "z").select(pred);
        let out = rewrite(p);
        assert!(!out.has_apply());
        assert!(out.any_node(&mut |n| matches!(n, Plan::Nest { star: false, .. })));
        assert!(out.any_node(&mut |n| matches!(n, Plan::Join { .. })));
    }

    #[test]
    fn membership_flattens_to_join_with_projection() {
        let pred = E::set_cmp(SetCmpOp::In, E::path("x", &["b"]), E::var("z"));
        let p = Plan::scan("R", "x").apply(sub(), "z").select(pred);
        let out = rewrite(p);
        assert!(!out.has_apply());
        assert!(out.any_node(&mut |n| matches!(n, Plan::Project { .. })));
        assert!(!out.any_node(&mut |n| matches!(n, Plan::GroupAgg { .. })));
    }

    #[test]
    fn non_equi_correlation_is_not_kims_case() {
        let sub = Plan::scan("S", "y")
            .select(E::cmp(
                CmpOp::Lt,
                E::path("x", &["c"]),
                E::path("y", &["c"]),
            ))
            .map(E::path("y", &["d"]), "s");
        let pred = E::eq(E::path("x", &["b"]), E::agg(AggFn::Count, E::var("z")));
        let p = Plan::scan("R", "x").apply(sub, "z").select(pred);
        let out = rewrite(p);
        assert!(out.has_apply(), "Kim must leave non-equi correlation alone");
    }

    #[test]
    fn uncorrelated_aggregate_subquery_single_group() {
        // x.b = count(z), z uncorrelated → T is a single global group.
        let sub = Plan::scan("S", "y").map(E::path("y", &["d"]), "s");
        let pred = E::eq(E::path("x", &["b"]), E::agg(AggFn::Count, E::var("z")));
        let p = Plan::scan("R", "x").apply(sub, "z").select(pred);
        let out = rewrite(p);
        assert!(!out.has_apply());
        let has_keyless_group =
            out.any_node(&mut |n| matches!(n, Plan::GroupAgg { keys, .. } if keys.is_empty()));
        assert!(has_keyless_group);
    }
}
