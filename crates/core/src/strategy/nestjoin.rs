//! The paper's nest join strategy (Section 6).
//!
//! Every canonical block
//!
//! ```text
//! [Select P]  Apply z := (I, Map G (Select Q (R)))
//! ```
//!
//! with a closed inner plan `R` becomes
//!
//! ```text
//! [Select P]  I Δ_{Q, G; z} R
//! ```
//!
//! Grouping happens *during* the join; dangling tuples of `I` survive with
//! `z = ∅`, so predicates like `x.a = count(z)` or `x.a ⊆ z` — and
//! SELECT-clause nesting, which builds nested results — evaluate correctly
//! without NULLs. This works uniformly for WHERE-clause and SELECT-clause
//! nesting; no predicate classification is needed (that is the nest join's
//! virtue; its cost relative to semi/antijoins is the subject of
//! benchmark B3).

use tmql_algebra::{Plan, ScalarExpr};

use super::{decompose_subquery, decorrelatable, rewrite_blocks};

/// Rewrite every decorrelatable block into a nest join.
pub fn rewrite(plan: Plan) -> Plan {
    rewrite_blocks(plan, &mut |pred, input, subquery, label| {
        let replacement = rewrite_one(input, subquery, label)?;
        Some(match pred {
            // The block predicate stays; `z` is now the nest join label.
            Some(p) => replacement.select(p.clone()),
            None => replacement,
        })
    })
}

/// Rewrite a single block, returning `None` when the inner plan is
/// correlated (set-valued attribute operands stay nested-loop).
pub fn rewrite_one(input: &Plan, subquery: &Plan, label: &str) -> Option<Plan> {
    let parts = decompose_subquery(subquery)?;
    if !decorrelatable(&parts) {
        return None;
    }
    Some(Plan::NestJoin {
        left: Box::new(input.clone()),
        right: Box::new(parts.inner),
        pred: parts.q,
        func: parts.g,
        label: label.to_string(),
    })
}

/// Convenience: the nest join of the paper's Table 1 (identity join
/// function) as a plan builder.
pub fn nest_join_identity(
    left: Plan,
    right: Plan,
    right_var: &str,
    pred: ScalarExpr,
    label: &str,
) -> Plan {
    left.nest_join(right, pred, ScalarExpr::var(right_var), label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::{ScalarExpr as E, SetCmpOp};

    fn block() -> Plan {
        // SELECT x FROM X x WHERE x.a ⊆ (SELECT y.a FROM Y y WHERE x.b=y.b)
        let sub = Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
            .map(E::path("y", &["a"]), "s");
        Plan::scan("X", "x")
            .apply(sub, "z")
            .select(E::set_cmp(
                SetCmpOp::SubsetEq,
                E::path("x", &["a"]),
                E::var("z"),
            ))
            .map(E::var("x"), "out")
    }

    #[test]
    fn where_block_becomes_select_over_nestjoin() {
        let out = rewrite(block());
        assert!(!out.has_apply());
        assert!(out.has_nest_join());
        // Shape: Map(Select(NestJoin)).
        let Plan::Map { input, .. } = out else {
            panic!("map root")
        };
        let Plan::Select { input, pred } = *input else {
            panic!("select")
        };
        assert!(pred.mentions("z"));
        let Plan::NestJoin { label, pred: q, .. } = *input else {
            panic!("nest join")
        };
        assert_eq!(label, "z");
        assert!(q.mentions("x") && q.mentions("y"));
    }

    #[test]
    fn select_clause_block_becomes_bare_nestjoin() {
        // Q2-style: nested result, no WHERE predicate over z.
        let sub = Plan::scan("EMP", "e")
            .select(E::eq(E::path("e", &["city"]), E::path("d", &["city"])))
            .map(E::var("e"), "s");
        let q2 = Plan::scan("DEPT", "d").apply(sub, "emps").map(
            E::Tuple(vec![
                ("dname".into(), E::path("d", &["name"])),
                ("emps".into(), E::var("emps")),
            ]),
            "out",
        );
        let out = rewrite(q2);
        assert!(!out.has_apply());
        assert!(out.has_nest_join());
    }

    #[test]
    fn correlated_inner_operand_stays_apply() {
        // FROM d.emps e — must NOT be flattened (Section 3.2).
        let sub = Plan::ScanExpr {
            expr: E::path("d", &["emps"]),
            var: "e".into(),
        }
        .map(E::var("e"), "s");
        let q = Plan::scan("DEPT", "d").apply(sub, "z").select(E::set_cmp(
            SetCmpOp::In,
            E::path("d", &["mgr"]),
            E::var("z"),
        ));
        let out = rewrite(q);
        assert!(out.has_apply());
        assert!(!out.has_nest_join());
    }

    #[test]
    fn multi_level_rewrites_both_blocks() {
        // Section 8 shape: X ⊆-correlates to Y which ⊆-correlates to Z.
        let sub2 = Plan::scan("Z", "zz")
            .select(E::eq(E::path("y", &["d"]), E::path("zz", &["d"])))
            .map(E::path("zz", &["c"]), "s2");
        let y_block = Plan::scan("Y", "y")
            .apply(sub2, "z2")
            .select(E::and(
                E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
                E::set_cmp(SetCmpOp::SubsetEq, E::path("y", &["c"]), E::var("z2")),
            ))
            .map(E::path("y", &["a"]), "s1");
        let top = Plan::scan("X", "x").apply(y_block, "z1").select(E::set_cmp(
            SetCmpOp::SubsetEq,
            E::path("x", &["a"]),
            E::var("z1"),
        ));
        let out = rewrite(top);
        assert!(!out.has_apply());
        assert_eq!(
            out.count_nodes(&mut |n| matches!(n, Plan::NestJoin { .. })),
            2
        );
    }
}
