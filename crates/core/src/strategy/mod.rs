//! Unnesting strategies.
//!
//! Every strategy rewrites the canonical translated shape of a nested
//! SFW block (see `tmql-translate`):
//!
//! ```text
//! Select P(x, z)                    -- nesting in the WHERE clause, or
//!   Apply z :=                      -- a bare Apply for SELECT-clause
//!     input:    <outer plan I>      -- nesting
//!     subquery: Map G(x, y)
//!                 Select Q(x, y)
//!                   <inner plan R>
//! ```
//!
//! into a join shape, eliminating the correlated `Apply` (the nested
//! loop). The strategies differ exactly as the paper's Section 2/6 survey
//! does — see each submodule. All of them require the inner plan `R` to be
//! **closed** (no free variables): a subquery iterating a set-valued
//! attribute of the outer variable (`FROM d.emps e`) stays a nested loop,
//! which is the paper's point that "there is no use to flatten nested
//! queries in which subquery operands are set-valued attributes"
//! (Section 3.2).

pub mod ganski_wong;
pub mod kim;
pub mod muralikrishna;
pub mod nested_loop;
pub mod nestjoin;
pub mod semi_anti;

use tmql_algebra::{Plan, ScalarExpr};

/// Which unnesting strategy to apply to a translated plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnnestStrategy {
    /// Keep the correlated `Apply`: nested-loop processing. Always correct;
    /// the paper's "naive way" (Section 9).
    NestedLoop,
    /// Kim's algorithm [Kim 82] — join + grouping, **bug-compatible**:
    /// loses dangling outer tuples whenever grouping is involved (the
    /// COUNT bug of Section 2 and the SUBSETEQ bug of Section 4).
    Kim,
    /// Ganski–Wong [SIGMOD 87] — outerjoin + ν* grouping; the relational
    /// repair of Kim's bug using NULLs.
    GanskiWong,
    /// Muralikrishna [VLDB 89/92] — group-first unnesting repaired with
    /// an outerjoin and an antijoin predicate for dangling tuples.
    Muralikrishna,
    /// The paper's nest join Δ (Section 6): grouping during the join,
    /// dangling tuples get ∅.
    NestJoin,
    /// Theorem 1 flattening only: rewrite into semijoin/antijoin where the
    /// predicate classification allows, leave everything else as `Apply`.
    FlattenSemiAnti,
    /// The paper's full pipeline (Section 8): flatten to semi/antijoin
    /// where Theorem 1 allows, use the nest join everywhere else.
    Optimal,
    /// Cost-based per-block choice: enumerate the applicable rewrites
    /// (semi/antijoin flattening, nest join, Ganski–Wong, Muralikrishna,
    /// and the nested-loop baseline), estimate each candidate's cost with
    /// a [`crate::optimizer::CostModel`] over storage statistics, and keep
    /// the cheapest. Where Theorem 1 or closedness restricts the
    /// candidates (Section 3.2), only the legal ones compete; with no
    /// model available it degrades to the rule-based [`Self::Optimal`].
    #[default]
    CostBased,
}

impl UnnestStrategy {
    /// All strategies, for differential tests and benchmarks.
    pub const ALL: [UnnestStrategy; 8] = [
        UnnestStrategy::NestedLoop,
        UnnestStrategy::Kim,
        UnnestStrategy::GanskiWong,
        UnnestStrategy::Muralikrishna,
        UnnestStrategy::NestJoin,
        UnnestStrategy::FlattenSemiAnti,
        UnnestStrategy::Optimal,
        UnnestStrategy::CostBased,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            UnnestStrategy::NestedLoop => "nested-loop",
            UnnestStrategy::Kim => "kim",
            UnnestStrategy::GanskiWong => "ganski-wong",
            UnnestStrategy::Muralikrishna => "muralikrishna",
            UnnestStrategy::NestJoin => "nest-join",
            UnnestStrategy::FlattenSemiAnti => "semi-anti",
            UnnestStrategy::Optimal => "optimal",
            UnnestStrategy::CostBased => "cost-based",
        }
    }

    /// True for the strategies that are documented to return wrong answers
    /// on dangling tuples (kept for bug-demonstration experiments).
    pub fn is_bug_compatible(&self) -> bool {
        matches!(self, UnnestStrategy::Kim)
    }
}

/// The decomposed canonical subquery `Map G (Select Q (R))`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubqueryParts {
    /// Inner operand plan `R` (everything under the block's Select).
    pub inner: Plan,
    /// Correlation/selection predicate `Q(x, y)` (`true` when absent).
    pub q: ScalarExpr,
    /// Result expression `G(x, y)`.
    pub g: ScalarExpr,
}

/// Decompose a subquery plan into [`SubqueryParts`]. Returns `None` when
/// the plan is not of the canonical `Map (Select …)` / `Map (…)` shape.
pub fn decompose_subquery(sub: &Plan) -> Option<SubqueryParts> {
    let Plan::Map { input, expr, .. } = sub else {
        return None;
    };
    Some(match &**input {
        Plan::Select { input: r, pred } => SubqueryParts {
            inner: (**r).clone(),
            q: pred.clone(),
            g: expr.clone(),
        },
        other => SubqueryParts {
            inner: other.clone(),
            q: ScalarExpr::lit(true),
            g: expr.clone(),
        },
    })
}

/// True iff the inner plan can be decorrelated: it has no free variables
/// (all correlation lives in `Q`/`G`, not in `R` itself).
pub fn decorrelatable(parts: &SubqueryParts) -> bool {
    parts.inner.free_vars().is_empty()
}

/// Replace every occurrence of the subexpression `target` inside `expr`
/// by `replacement` (structural equality).
pub fn replace_subexpr(
    expr: &ScalarExpr,
    target: &ScalarExpr,
    replacement: &ScalarExpr,
) -> ScalarExpr {
    if expr == target {
        return replacement.clone();
    }
    use ScalarExpr as E;
    match expr {
        E::Lit(_) | E::Var(_) => expr.clone(),
        E::Field(e, l) => E::Field(Box::new(replace_subexpr(e, target, replacement)), l.clone()),
        E::Not(e) => E::not(replace_subexpr(e, target, replacement)),
        E::Agg(f, e) => E::agg(*f, replace_subexpr(e, target, replacement)),
        E::Unnest(e) => E::Unnest(Box::new(replace_subexpr(e, target, replacement))),
        E::IsNull(e) => E::IsNull(Box::new(replace_subexpr(e, target, replacement))),
        E::Cmp(op, a, b) => E::cmp(
            *op,
            replace_subexpr(a, target, replacement),
            replace_subexpr(b, target, replacement),
        ),
        E::Arith(op, a, b) => E::Arith(
            *op,
            Box::new(replace_subexpr(a, target, replacement)),
            Box::new(replace_subexpr(b, target, replacement)),
        ),
        E::And(a, b) => E::and(
            replace_subexpr(a, target, replacement),
            replace_subexpr(b, target, replacement),
        ),
        E::Or(a, b) => E::or(
            replace_subexpr(a, target, replacement),
            replace_subexpr(b, target, replacement),
        ),
        E::SetBin(op, a, b) => E::SetBin(
            *op,
            Box::new(replace_subexpr(a, target, replacement)),
            Box::new(replace_subexpr(b, target, replacement)),
        ),
        E::SetCmp(op, a, b) => E::set_cmp(
            *op,
            replace_subexpr(a, target, replacement),
            replace_subexpr(b, target, replacement),
        ),
        E::Tuple(fs) => E::Tuple(
            fs.iter()
                .map(|(l, e)| (l.clone(), replace_subexpr(e, target, replacement)))
                .collect(),
        ),
        E::SetLit(es) => E::SetLit(
            es.iter()
                .map(|e| replace_subexpr(e, target, replacement))
                .collect(),
        ),
        E::Quant { q, var, over, pred } => E::quant(
            *q,
            var.clone(),
            replace_subexpr(over, target, replacement),
            replace_subexpr(pred, target, replacement),
        ),
    }
}

/// Apply a strategy-specific rewriter over the plan, inside-out: the
/// nested blocks of a multi-level query are rewritten before their
/// enclosing block (the order of the paper's Section 8 example). The
/// rewriter receives `(select_pred, input_plan, subquery_plan, label)` for
/// each `Select(Apply)` / bare `Apply` occurrence — `select_pred` is `None`
/// for SELECT-clause nesting — and returns the replacement plan, or `None`
/// to keep nested-loop processing.
pub fn rewrite_blocks(
    plan: Plan,
    rewriter: &mut impl FnMut(Option<&ScalarExpr>, &Plan, &Plan, &str) -> Option<Plan>,
) -> Plan {
    // First rewrite the children of the pattern (inside-out recursion),
    // *then* offer the rebuilt pattern to the rewriter.
    match plan {
        Plan::Select { input, pred } if matches!(*input, Plan::Apply { .. }) => {
            let Plan::Apply {
                input: outer,
                subquery,
                label,
            } = *input
            else {
                unreachable!()
            };
            let outer = rewrite_blocks(*outer, rewriter);
            let subquery = rewrite_blocks(*subquery, rewriter);
            match rewriter(Some(&pred), &outer, &subquery, &label) {
                Some(replacement) => replacement,
                None => Plan::Select {
                    input: Box::new(Plan::Apply {
                        input: Box::new(outer),
                        subquery: Box::new(subquery),
                        label,
                    }),
                    pred,
                },
            }
        }
        Plan::Apply {
            input,
            subquery,
            label,
        } => {
            let input = rewrite_blocks(*input, rewriter);
            let subquery = rewrite_blocks(*subquery, rewriter);
            match rewriter(None, &input, &subquery, &label) {
                Some(replacement) => replacement,
                None => Plan::Apply {
                    input: Box::new(input),
                    subquery: Box::new(subquery),
                    label,
                },
            }
        }
        other => {
            let children: Vec<Plan> = tmql_algebra::rewrite::take_children(&other)
                .into_iter()
                .map(|c| rewrite_blocks(c, rewriter))
                .collect();
            tmql_algebra::rewrite::with_children(other, children)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::{CmpOp, ScalarExpr as E};

    fn canonical_sub() -> Plan {
        Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
            .map(E::path("y", &["a"]), "sub")
    }

    #[test]
    fn decompose_canonical() {
        let parts = decompose_subquery(&canonical_sub()).unwrap();
        assert_eq!(parts.inner, Plan::scan("Y", "y"));
        assert!(parts.q.mentions("x"));
        assert_eq!(parts.g, E::path("y", &["a"]));
        assert!(decorrelatable(&parts));
    }

    #[test]
    fn decompose_without_select() {
        let sub = Plan::scan("Y", "y").map(E::var("y"), "sub");
        let parts = decompose_subquery(&sub).unwrap();
        assert_eq!(parts.q, E::lit(true));
    }

    #[test]
    fn non_canonical_shapes_refused() {
        assert!(decompose_subquery(&Plan::scan("Y", "y")).is_none());
    }

    #[test]
    fn correlated_inner_not_decorrelatable() {
        // FROM d.emps e — inner plan references the outer var d.
        let sub = Plan::ScanExpr {
            expr: E::path("d", &["emps"]),
            var: "e".into(),
        }
        .map(E::var("e"), "sub");
        let parts = decompose_subquery(&sub).unwrap();
        assert!(!decorrelatable(&parts));
    }

    #[test]
    fn replace_subexpr_replaces_all_occurrences() {
        let count_z = E::agg(tmql_algebra::AggFn::Count, E::var("z"));
        let e = E::and(
            E::cmp(CmpOp::Eq, E::path("x", &["b"]), count_z.clone()),
            E::cmp(CmpOp::Lt, count_z.clone(), E::lit(10i64)),
        );
        let replaced = replace_subexpr(&e, &count_z, &E::path("t", &["cnt"]));
        assert!(!replaced.mentions("z"));
        assert!(replaced.mentions("t"));
    }

    #[test]
    fn rewrite_blocks_visits_inner_first() {
        // Two-level nesting: record visit order of labels.
        let inner_sub = Plan::scan("Z", "z2scan").map(E::path("z2scan", &["c"]), "s2");
        let y_block = Plan::scan("Y", "y")
            .apply(inner_sub, "z2")
            .select(E::set_cmp(
                tmql_algebra::SetCmpOp::In,
                E::path("y", &["c"]),
                E::var("z2"),
            ))
            .map(E::path("y", &["a"]), "s1");
        let top = Plan::scan("X", "x").apply(y_block, "z1").select(E::set_cmp(
            tmql_algebra::SetCmpOp::In,
            E::path("x", &["a"]),
            E::var("z1"),
        ));
        let mut order = Vec::new();
        let _ = rewrite_blocks(top, &mut |_, _, _, label| {
            order.push(label.to_string());
            None
        });
        assert_eq!(order, vec!["z2".to_string(), "z1".to_string()]);
    }

    #[test]
    fn rewrite_blocks_can_replace() {
        let sub = canonical_sub();
        let top = Plan::scan("X", "x").apply(sub, "z");
        let out = rewrite_blocks(top, &mut |_, input, _, _| Some(input.clone()));
        assert_eq!(out, Plan::scan("X", "x"));
    }

    #[test]
    fn strategy_names_unique() {
        let names: std::collections::BTreeSet<_> =
            UnnestStrategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), UnnestStrategy::ALL.len());
    }
}
