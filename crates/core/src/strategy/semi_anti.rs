//! Theorem 1 flattening: semijoin / antijoin replacement (Section 7).
//!
//! When the block predicate classifies as `∃v ∈ z (P')`, the block
//!
//! ```text
//! Select P(x,z)  Apply z := (I, Map G (Select Q (R)))
//! ```
//!
//! becomes the **semijoin** `I ⋉_{Q ∧ P'[v ↦ G]} R` — "the join predicate
//! is P'(x, G(x,y)) ∧ Q(x,y)" (Section 7). A `¬∃` classification yields
//! the **antijoin** `I ▷_{Q ∧ P'[v ↦ G]} R`. Dangling tuples need no
//! special care: a semijoin keeps exactly the matched left tuples and an
//! antijoin exactly the unmatched ones, which is the whole point of
//! Theorem 1 — for these predicates the subquery result never needs to be
//! materialized, so no grouping and no bug.

use tmql_algebra::{Plan, ScalarExpr};

use crate::classify::{classify, split_on_z, Classification, FRESH_VAR};

use super::{decompose_subquery, decorrelatable, rewrite_blocks};

/// Rewrite every block whose predicate admits a Theorem 1 form; leave
/// grouping-requiring blocks (and SELECT-clause nesting) untouched.
pub fn rewrite(plan: Plan) -> Plan {
    rewrite_blocks(plan, &mut |pred, input, subquery, label| {
        rewrite_one(pred?, input, subquery, label)
    })
}

/// Attempt to flatten one block. Returns `None` when the predicate
/// requires grouping or the inner plan cannot be decorrelated.
pub fn rewrite_one(pred: &ScalarExpr, input: &Plan, subquery: &Plan, label: &str) -> Option<Plan> {
    let parts = decompose_subquery(subquery)?;
    if !decorrelatable(&parts) {
        return None;
    }
    let (zpart, rest) = split_on_z(pred, label);
    let zpart = match zpart {
        Some(p) => p,
        // Predicate ignores the subquery entirely: drop the Apply, keep
        // the filter.
        None => return Some(input.clone().select(ScalarExpr::conj(rest))),
    };
    let flattened = match classify(&zpart, label) {
        Classification::Existential { pred: p_prime } => {
            let join_pred = join_predicate(&parts.q, &p_prime, &parts.g);
            input.clone().semi_join(parts.inner, join_pred)
        }
        Classification::NegatedExistential { pred: p_prime } => {
            let join_pred = join_predicate(&parts.q, &p_prime, &parts.g);
            input.clone().anti_join(parts.inner, join_pred)
        }
        Classification::Independent => {
            // split_on_z said the conjunct mentions z but classify says
            // independent — cannot happen; be safe.
            return None;
        }
        Classification::RequiresGrouping => return None,
    };
    Some(if rest.is_empty() {
        flattened
    } else {
        flattened.select(ScalarExpr::conj(rest))
    })
}

/// Build `Q(x,y) ∧ P'(x, G(x,y))`.
fn join_predicate(q: &ScalarExpr, p_prime: &ScalarExpr, g: &ScalarExpr) -> ScalarExpr {
    let p_on_g = p_prime.substitute(FRESH_VAR, g);
    match q {
        ScalarExpr::Lit(tmql_model::Value::Bool(true)) => p_on_g,
        _ => ScalarExpr::and(q.clone(), p_on_g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::{CmpOp, ScalarExpr as E, SetCmpOp};

    fn sub() -> Plan {
        Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
            .map(E::path("y", &["a"]), "s")
    }

    fn block(pred: E) -> Plan {
        Plan::scan("X", "x")
            .apply(sub(), "z")
            .select(pred)
            .map(E::var("x"), "out")
    }

    #[test]
    fn membership_becomes_semijoin_with_papers_predicate() {
        // x.a ∈ z → X ⋉_{x.b=y.b ∧ y.a=x.a} Y.
        let out = rewrite(block(E::set_cmp(
            SetCmpOp::In,
            E::path("x", &["a"]),
            E::var("z"),
        )));
        assert!(!out.has_apply());
        let Plan::Map { input, .. } = out else {
            panic!("map root")
        };
        let Plan::SemiJoin { pred, .. } = *input else {
            panic!("semijoin, got {input}")
        };
        // Join predicate must mention both Q and P'(x, G).
        assert!(pred.mentions("x") && pred.mentions("y"));
        assert!(!pred.mentions("z"));
        assert!(!pred.mentions(FRESH_VAR));
    }

    #[test]
    fn non_membership_becomes_antijoin() {
        let out = rewrite(block(E::set_cmp(
            SetCmpOp::NotIn,
            E::path("x", &["a"]),
            E::var("z"),
        )));
        assert!(out.any_node(&mut |n| matches!(n, Plan::AntiJoin { .. })));
    }

    #[test]
    fn grouping_predicate_left_as_nested_loop() {
        let out = rewrite(block(E::set_cmp(
            SetCmpOp::SubsetEq,
            E::path("x", &["a"]),
            E::var("z"),
        )));
        assert!(
            out.has_apply(),
            "⊆ requires grouping; this strategy must not flatten it"
        );
    }

    #[test]
    fn extra_conjuncts_survive_as_filter() {
        let pred = E::and(
            E::cmp(CmpOp::Gt, E::path("x", &["a"]), E::lit(0i64)),
            E::set_cmp(SetCmpOp::In, E::path("x", &["a"]), E::var("z")),
        );
        let out = rewrite(block(pred));
        let Plan::Map { input, .. } = out else {
            panic!("map root")
        };
        let Plan::Select { pred: rest, input } = *input else {
            panic!("residual select")
        };
        assert!(rest.mentions("x") && !rest.mentions("z"));
        assert!(matches!(*input, Plan::SemiJoin { .. }));
    }

    #[test]
    fn dead_subquery_is_eliminated() {
        let out = rewrite(block(E::cmp(CmpOp::Gt, E::path("x", &["a"]), E::lit(0i64))));
        assert!(!out.has_apply());
        assert!(!out.any_node(&mut |n| matches!(n, Plan::ScanTable { table, .. } if table == "Y")));
    }

    #[test]
    fn uncorrelated_q_true_join_predicate_is_just_p_prime() {
        let sub = Plan::scan("Y", "y").map(E::path("y", &["a"]), "s");
        let q = Plan::scan("X", "x").apply(sub, "z").select(E::set_cmp(
            SetCmpOp::In,
            E::path("x", &["a"]),
            E::var("z"),
        ));
        let out = rewrite(q);
        let Plan::SemiJoin { pred, .. } = out else {
            panic!("semijoin")
        };
        // No `true ∧ …` wrapper.
        assert!(matches!(pred, E::Cmp(..)));
    }
}
