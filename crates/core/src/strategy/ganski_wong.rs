//! The Ganski–Wong outerjoin fix [SIGMOD 87], as surveyed in Section 2.
//!
//! The block
//!
//! ```text
//! [Select P]  Apply z := (I, Map G (Select Q (R)))
//! ```
//!
//! becomes
//!
//! ```text
//! [Select P]
//!   ν*_{vars(I); z := G}      -- group by the outer tuple, NULLs → ∅
//!     I ⟕_Q R                 -- LEFT OUTERJOIN preserves dangling tuples
//! ```
//!
//! Dangling `I` tuples survive the outerjoin NULL-extended; the modified
//! nest operator ν* maps their `{NULL}` group to the empty set, after
//! which `P(x, z)` evaluates correctly (`count(z) = 0` for the COUNT-bug
//! query). This is the *relational* repair: correct, but it must (a) pay
//! for a full outerjoin result before grouping, and (b) "resort to NULLs"
//! — the paper's Section 6 point is that a complex object model can skip
//! both by nest-joining directly.

use std::collections::BTreeSet;

use tmql_algebra::{Plan, ScalarExpr};

use super::{decompose_subquery, decorrelatable, rewrite_blocks};

/// Rewrite every decorrelatable block with the outerjoin + ν* scheme.
pub fn rewrite(plan: Plan) -> Plan {
    rewrite_blocks(plan, &mut |pred, input, subquery, label| {
        let replacement = rewrite_one(input, subquery, label)?;
        Some(match pred {
            Some(p) => replacement.select(p.clone()),
            None => replacement,
        })
    })
}

/// Rewrite one block; `None` when the inner plan is correlated or the
/// result expression would not NULL-propagate (see below).
pub fn rewrite_one(input: &Plan, subquery: &Plan, label: &str) -> Option<Plan> {
    let parts = decompose_subquery(subquery)?;
    if !decorrelatable(&parts) {
        return None;
    }
    // ν* recognizes dangling tuples by their NULL payload, so G must
    // evaluate to NULL on a NULL-extended row. That holds for column
    // references (`y.a`, `y`), i.e. for everything expressible in the
    // relational model this fix was designed for; a constructed value like
    // a tuple literal would mask the NULL and silently resurrect the bug,
    // so we refuse and let the caller fall back.
    let inner_vars: BTreeSet<String> = parts.inner.output_vars().into_iter().collect();
    if !null_propagating(&parts.g, &inner_vars) {
        return None;
    }
    let outer = Plan::LeftOuterJoin {
        left: Box::new(input.clone()),
        right: Box::new(parts.inner),
        pred: parts.q,
    };
    Some(Plan::Nest {
        input: Box::new(outer),
        keys: input.output_vars(),
        value: parts.g,
        label: label.to_string(),
        star: true,
    })
}

/// True iff `g` is a variable or field path rooted at one of `vars` —
/// the shapes that evaluate to NULL on NULL-extended rows.
fn null_propagating(g: &ScalarExpr, vars: &BTreeSet<String>) -> bool {
    match g {
        ScalarExpr::Var(v) => vars.contains(v),
        ScalarExpr::Field(inner, _) => null_propagating(inner, vars),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::{AggFn, CmpOp, ScalarExpr as E};

    fn sub(g: E) -> Plan {
        Plan::scan("S", "y")
            .select(E::eq(E::path("x", &["c"]), E::path("y", &["c"])))
            .map(g, "s")
    }

    #[test]
    fn count_bug_query_gets_outerjoin_and_nu_star() {
        let pred = E::eq(E::path("x", &["b"]), E::agg(AggFn::Count, E::var("z")));
        let p = Plan::scan("R", "x")
            .apply(sub(E::path("y", &["d"])), "z")
            .select(pred);
        let out = rewrite(p);
        assert!(!out.has_apply());
        assert!(out.any_node(&mut |n| matches!(n, Plan::LeftOuterJoin { .. })));
        assert!(out.any_node(&mut |n| matches!(n, Plan::Nest { star: true, .. })));
    }

    #[test]
    fn select_clause_nesting_supported() {
        // Grouping "following the join" (Section 5) — bare Apply.
        let p = Plan::scan("R", "x").apply(sub(E::var("y")), "emps").map(
            E::Tuple(vec![
                ("r".into(), E::var("x")),
                ("es".into(), E::var("emps")),
            ]),
            "out",
        );
        let out = rewrite(p);
        assert!(!out.has_apply());
        assert!(out.any_node(&mut |n| matches!(n, Plan::Nest { star: true, .. })));
    }

    #[test]
    fn constructed_g_refused() {
        // G = (a = y.d) would hide the NULL from ν*; the strategy must
        // decline rather than produce wrong answers.
        let g = E::Tuple(vec![("a".into(), E::path("y", &["d"]))]);
        let pred = E::cmp(CmpOp::Ne, E::agg(AggFn::Count, E::var("z")), E::lit(0i64));
        let p = Plan::scan("R", "x").apply(sub(g), "z").select(pred);
        let out = rewrite(p);
        assert!(out.has_apply(), "non-null-propagating G must fall back");
    }

    #[test]
    fn correlated_inner_refused() {
        let sub = Plan::ScanExpr {
            expr: E::path("x", &["kids"]),
            var: "k".into(),
        }
        .map(E::var("k"), "s");
        let p = Plan::scan("R", "x").apply(sub, "z").select(E::cmp(
            CmpOp::Eq,
            E::agg(AggFn::Count, E::var("z")),
            E::lit(0i64),
        ));
        assert!(rewrite(p).has_apply());
    }
}
