//! Nested-loop processing: the identity strategy.
//!
//! "A naive way to handle nested queries is by nested-loop processing"
//! (Section 9). The correlated `Apply` *is* the nested loop, so this
//! strategy rewrites nothing. It is always correct — which makes it the
//! semantics oracle every other strategy is differentially tested against —
//! and often very inefficient, which is what the benchmarks show.

use tmql_algebra::Plan;

/// Apply the nested-loop strategy (a no-op, by design).
pub fn rewrite(plan: Plan) -> Plan {
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::ScalarExpr as E;

    #[test]
    fn keeps_apply_nodes() {
        let p = Plan::scan("X", "x")
            .apply(Plan::scan("Y", "y").map(E::var("y"), "s"), "z")
            .select(E::lit(true));
        let out = rewrite(p.clone());
        assert_eq!(out, p);
        assert!(out.has_apply());
    }
}
