//! Muralikrishna's improved unnesting [VLDB 89/92], as surveyed in
//! Section 2 — the *other* correct relational fix.
//!
//! Where Ganski–Wong modify Kim's join-first variant (2), Muralikrishna
//! modifies the group-first variant (1), which "in some cases is more
//! efficient": keep the aggregated table `T = γ(R)`, but replace the final
//! regular join by an **outerjoin with two predicates** — the regular
//! predicate applied to matched tuples, and an **antijoin predicate**
//! applied to the dangling ones:
//!
//! ```text
//! Select (t ≠ NULL ∧ P[H(z) ↦ t.agg]) ∨ (t = NULL ∧ P[H(z) ↦ H(∅)])
//!   I ⟕_{x.c = t.c} T
//! T = γ_{keys; agg}(R)
//! ```
//!
//! For the COUNT-bug query the antijoin predicate is the paper's
//! `R.B = 0` (COUNT of the empty set). The same trick generalizes to the
//! complex-object grouping predicates by substituting the **empty set**
//! for `z` in the antijoin predicate (`x.a ⊆ ∅` for the SUBSETEQ query) —
//! dangling tuples never see `T` at all, so the bug cannot occur.

use tmql_algebra::{AggFn, Plan, ScalarExpr};
use tmql_model::Value;

use crate::classify::{classify, split_on_z, Classification};

use super::kim::{correlation, find_unique_agg};
use super::{decompose_subquery, decorrelatable, replace_subexpr, rewrite_blocks};

/// Rewrite every decorrelatable WHERE-block with the outerjoin +
/// antijoin-predicate scheme. SELECT-clause nesting is left to other
/// strategies (the scheme fixes a *predicate*, and nested results have
/// none).
pub fn rewrite(plan: Plan) -> Plan {
    rewrite_blocks(plan, &mut |pred, input, subquery, label| {
        rewrite_one(pred?, input, subquery, label)
    })
}

/// Rewrite one block; `None` leaves it as a nested loop.
pub fn rewrite_one(pred: &ScalarExpr, input: &Plan, subquery: &Plan, label: &str) -> Option<Plan> {
    let parts = decompose_subquery(subquery)?;
    if !decorrelatable(&parts) {
        return None;
    }
    let (zpart, rest) = split_on_z(pred, label);
    let zpart = match zpart {
        Some(p) => p,
        None => return Some(input.clone().select(ScalarExpr::conj(rest))),
    };
    // Existential predicates flatten exactly; delegate (Muralikrishna's
    // types N/J treatment coincides with Kim's correct path).
    if matches!(classify(&zpart, label), Classification::Existential { .. }) {
        return super::semi_anti::rewrite_one(pred, input, subquery, label);
    }
    let corr = correlation(input, &parts)?;

    let (t_plan, t_vars, matched_pred, anti_pred) =
        if let Some(agg) = find_unique_agg(&zpart, label) {
            // Aggregate case: T = γ(R).
            let tvar = format!("__t_{label}");
            let keys: Vec<(String, ScalarExpr)> = corr
                .inner_keys
                .iter()
                .enumerate()
                .map(|(i, e)| (format!("k{i}"), e.clone()))
                .collect();
            let t = Plan::GroupAgg {
                input: Box::new(corr.inner_plan.clone()),
                keys: keys.clone(),
                aggs: vec![("agg".to_string(), agg, parts.g.clone())],
                var: tvar.clone(),
            };
            let target = ScalarExpr::agg(agg, ScalarExpr::var(label));
            let matched = replace_subexpr(&zpart, &target, &ScalarExpr::path(&tvar, &["agg"]));
            if matched.mentions(label) {
                return None; // mixed aggregate/set use of z
            }
            // Antijoin predicate: H(∅).
            let default = match agg {
                AggFn::Count => ScalarExpr::lit(0i64),
                AggFn::Sum => ScalarExpr::lit(0i64),
                AggFn::Min | AggFn::Max | AggFn::Avg => ScalarExpr::Lit(Value::Null),
            };
            let anti = replace_subexpr(&zpart, &target, &default);
            let key_eqs: Vec<ScalarExpr> = corr
                .outer_keys
                .iter()
                .zip(&keys)
                .map(|(o, (kname, _))| {
                    ScalarExpr::eq(o.clone(), ScalarExpr::var(&tvar).field(kname.clone()))
                })
                .collect();
            (
                t,
                vec![tvar.clone()],
                conj_with(key_eqs, matched, &tvar),
                anti,
            )
        } else {
            // Complex-object case: T = ν(R), antijoin predicate P[z ↦ ∅].
            let mut extended = corr.inner_plan.clone();
            let mut key_vars = Vec::new();
            for (i, k) in corr.inner_keys.iter().enumerate() {
                let kname = format!("__k{i}_{label}");
                extended = extended.extend(k.clone(), kname.clone());
                key_vars.push(kname);
            }
            let t = Plan::Nest {
                input: Box::new(extended),
                keys: key_vars.clone(),
                value: parts.g.clone(),
                label: label.to_string(),
                star: false,
            };
            let key_eqs: Vec<ScalarExpr> = corr
                .outer_keys
                .iter()
                .zip(&key_vars)
                .map(|(o, k)| ScalarExpr::eq(o.clone(), ScalarExpr::var(k)))
                .collect();
            let anti = zpart.substitute(label, &ScalarExpr::Lit(Value::empty_set()));
            let mut t_vars = key_vars.clone();
            t_vars.push(label.to_string());
            (t, t_vars, conj_with(key_eqs, zpart.clone(), label), anti)
        };

    // The outerjoin on the key equalities; matched/dangling split by a
    // NULL test on the T-side binding.
    let probe_var = t_vars[0].clone();
    let outer = Plan::LeftOuterJoin {
        left: Box::new(input.clone()),
        right: Box::new(t_plan),
        pred: strip_matched_keys(&matched_pred),
    };
    let is_null = ScalarExpr::IsNull(Box::new(ScalarExpr::var(&probe_var)));
    let selected = outer.select(ScalarExpr::or(
        ScalarExpr::and(ScalarExpr::not(is_null.clone()), strip_keys(&matched_pred)),
        ScalarExpr::and(is_null, anti_pred),
    ));
    Some(if rest.is_empty() {
        selected
    } else {
        selected.select(ScalarExpr::conj(rest))
    })
}

/// The matched predicate is built as `keys ∧ P'`; the outerjoin takes the
/// whole conjunction as its join predicate, and the post-Select re-applies
/// only the `P'` part to matched rows. We carry the conjunction as a pair
/// to avoid re-splitting: `MatchedPred { keys, body }`.
#[derive(Debug, Clone)]
struct MatchedPred {
    keys: Vec<ScalarExpr>,
    body: ScalarExpr,
}

fn conj_with(keys: Vec<ScalarExpr>, body: ScalarExpr, _label: &str) -> MatchedPred {
    MatchedPred { keys, body }
}

fn strip_matched_keys(p: &MatchedPred) -> ScalarExpr {
    ScalarExpr::conj(p.keys.clone())
}

fn strip_keys(p: &MatchedPred) -> ScalarExpr {
    p.body.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::{CmpOp, ScalarExpr as E, SetCmpOp};

    fn sub() -> Plan {
        Plan::scan("S", "y")
            .select(E::eq(E::path("x", &["c"]), E::path("y", &["c"])))
            .map(E::path("y", &["d"]), "s")
    }

    #[test]
    fn count_query_gets_outerjoin_with_antijoin_predicate() {
        let pred = E::eq(E::path("x", &["b"]), E::agg(AggFn::Count, E::var("z")));
        let p = Plan::scan("R", "x").apply(sub(), "z").select(pred);
        let out = rewrite(p);
        assert!(!out.has_apply());
        assert!(
            out.any_node(&mut |n| matches!(n, Plan::GroupAgg { .. })),
            "{out}"
        );
        assert!(
            out.any_node(&mut |n| matches!(n, Plan::LeftOuterJoin { .. })),
            "{out}"
        );
        // The dangling branch compares against COUNT(∅) = 0.
        let has_anti = out.any_node(&mut |n| {
            matches!(n, Plan::Select { pred, .. }
                if format!("{pred}").contains("IS NULL") && format!("{pred}").contains("= 0"))
        });
        assert!(has_anti, "{out}");
    }

    #[test]
    fn subseteq_query_gets_empty_set_antijoin_predicate() {
        let pred = E::set_cmp(SetCmpOp::SubsetEq, E::path("x", &["a"]), E::var("z"));
        let p = Plan::scan("R", "x").apply(sub(), "z").select(pred);
        let out = rewrite(p);
        assert!(!out.has_apply());
        assert!(
            out.any_node(&mut |n| matches!(n, Plan::Nest { star: false, .. })),
            "{out}"
        );
        let has_empty = out.any_node(
            &mut |n| matches!(n, Plan::Select { pred, .. } if format!("{pred}").contains("⊆ {}")),
        );
        assert!(has_empty, "{out}");
    }

    #[test]
    fn existential_delegates_to_semijoin() {
        let pred = E::set_cmp(SetCmpOp::In, E::path("x", &["b"]), E::var("z"));
        let p = Plan::scan("R", "x").apply(sub(), "z").select(pred);
        let out = rewrite(p);
        assert!(
            out.any_node(&mut |n| matches!(n, Plan::SemiJoin { .. })),
            "{out}"
        );
        assert!(!out.any_node(&mut |n| matches!(n, Plan::LeftOuterJoin { .. })));
    }

    #[test]
    fn non_equi_correlation_stays_nested_loop() {
        let sub = Plan::scan("S", "y")
            .select(E::cmp(
                CmpOp::Lt,
                E::path("x", &["c"]),
                E::path("y", &["c"]),
            ))
            .map(E::path("y", &["d"]), "s");
        let pred = E::eq(E::path("x", &["b"]), E::agg(AggFn::Count, E::var("z")));
        let p = Plan::scan("R", "x").apply(sub, "z").select(pred);
        assert!(rewrite(p).has_apply());
    }
}
