//! Experiment E5: the algebraic properties of the nest join (Section 6),
//! verified by execution on randomized databases.
//!
//! The paper lists (for identity join functions, predicates `r(a, b)`
//! touching only the named operands):
//!
//! 1. `π_X(X Δ Y) = X`
//! 2. `(X ⋈_{r(x,y)} Y) Δ_{r(x,z)} Z ≡ (X Δ_{r(x,z)} Z) ⋈_{r(x,y)} Y`
//! 3. `(X ⋈_{r(x,y)} Y) Δ_{r(y,z)} Z ≡ X ⋈_{r(x,y)} (Y Δ_{r(y,z)} Z)`
//!
//! and the *non*-properties: Δ is not commutative, and Δ does not
//! associate with ⋈ when typed the other way. We verify 1–3 by running
//! both sides and comparing result sets, and verify the negative claims
//! by exhibiting witnesses.

use proptest::prelude::*;
use tmql_algebra::{Plan, ScalarExpr as E};
use tmql_core::rules;
use tmql_exec::{run_values, ExecConfig};
use tmql_storage::{table::int_table, Catalog};

fn catalog(x: &[(i64, i64)], y: &[(i64, i64)], z: &[(i64, i64)]) -> Catalog {
    let mut cat = Catalog::new();
    let to_refs =
        |rows: &[(i64, i64)]| -> Vec<Vec<i64>> { rows.iter().map(|(a, b)| vec![*a, *b]).collect() };
    let xr = to_refs(x);
    let yr = to_refs(y);
    let zr = to_refs(z);
    cat.register(int_table(
        "X",
        &["a", "b"],
        &xr.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    ))
    .unwrap();
    cat.register(int_table(
        "Y",
        &["b", "c"],
        &yr.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    ))
    .unwrap();
    cat.register(int_table(
        "Z",
        &["c", "d"],
        &zr.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    ))
    .unwrap();
    cat
}

fn eval(plan: &Plan, cat: &Catalog) -> std::collections::BTreeSet<tmql_model::Value> {
    run_values(plan, cat, &ExecConfig::auto()).expect("runs")
}

fn xy_join() -> Plan {
    Plan::scan("X", "x").join(
        Plan::scan("Y", "y"),
        E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Law 1: π_X(X Δ Y) = X.
    #[test]
    fn projection_absorbs_nest_join(
        x in prop::collection::vec((0i64..5, 0i64..4), 0..6),
        y in prop::collection::vec((0i64..4, 0i64..5), 0..6),
    ) {
        let cat = catalog(&x, &y, &[]);
        let lhs = Plan::scan("X", "x")
            .nest_join(
                Plan::scan("Y", "y"),
                E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
                E::var("y"),
                "ys",
            )
            .project(&["x"]);
        let rhs = Plan::scan("X", "x");
        prop_assert_eq!(eval(&lhs, &cat), eval(&rhs, &cat));
        // And the rule engine performs the same elimination syntactically.
        let rewritten = rules::project_nestjoin_elim(&lhs).expect("rule fires");
        prop_assert_eq!(eval(&rewritten, &cat), eval(&rhs, &cat));
    }

    /// Law 2: (X ⋈ Y) Δ Z ≡ (X Δ Z) ⋈ Y when the Δ predicate touches only X.
    #[test]
    fn interchange_law(
        x in prop::collection::vec((0i64..5, 0i64..4), 0..5),
        y in prop::collection::vec((0i64..4, 0i64..5), 0..5),
        z in prop::collection::vec((0i64..5, 0i64..4), 0..5),
    ) {
        let cat = catalog(&x, &y, &z);
        // Δ predicate r(x, z): x.a = z.c (x-only on the left side).
        let lhs = xy_join().nest_join(
            Plan::scan("Z", "z"),
            E::eq(E::path("x", &["a"]), E::path("z", &["c"])),
            E::path("z", &["d"]),
            "zs",
        );
        let rhs = rules::nestjoin_join_interchange(&lhs).expect("interchange applies");
        prop_assert_eq!(eval(&lhs, &cat), eval(&rhs, &cat));
    }

    /// Law 3: (X ⋈ Y) Δ Z ≡ X ⋈ (Y Δ Z) when the Δ predicate touches only Y.
    #[test]
    fn associativity_law(
        x in prop::collection::vec((0i64..5, 0i64..4), 0..5),
        y in prop::collection::vec((0i64..4, 0i64..5), 0..5),
        z in prop::collection::vec((0i64..5, 0i64..4), 0..5),
    ) {
        let cat = catalog(&x, &y, &z);
        let lhs = xy_join().nest_join(
            Plan::scan("Z", "z"),
            E::eq(E::path("y", &["c"]), E::path("z", &["c"])),
            E::path("z", &["d"]),
            "zs",
        );
        let rhs = rules::join_nestjoin_assoc(&lhs).expect("assoc applies");
        prop_assert_eq!(eval(&lhs, &cat), eval(&rhs, &cat));
    }

    /// Selection pushdown through Δ's left operand is sound.
    #[test]
    fn select_pushdown_sound(
        x in prop::collection::vec((0i64..5, 0i64..4), 0..6),
        y in prop::collection::vec((0i64..4, 0i64..5), 0..6),
        threshold in 0i64..5,
    ) {
        let cat = catalog(&x, &y, &[]);
        let base = Plan::scan("X", "x").nest_join(
            Plan::scan("Y", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            E::path("y", &["c"]),
            "ys",
        );
        let lhs = base.select(E::cmp(
            tmql_algebra::CmpOp::Ge,
            E::path("x", &["a"]),
            E::lit(threshold),
        ));
        let rhs = rules::select_pushdown_nestjoin(&lhs).expect("pushdown applies");
        prop_assert_eq!(eval(&lhs, &cat), eval(&rhs, &cat));
    }
}

/// The nest join is **not commutative**: `X Δ Y` and `Y Δ X` differ
/// already in type (Section 6).
#[test]
fn nest_join_not_commutative() {
    let cat = catalog(&[(1, 1)], &[(1, 7)], &[]);
    let pred = E::eq(E::path("x", &["b"]), E::path("y", &["b"]));
    let xy = Plan::scan("X", "x").nest_join(Plan::scan("Y", "y"), pred.clone(), E::var("y"), "s");
    let yx = Plan::scan("Y", "y").nest_join(Plan::scan("X", "x"), pred, E::var("x"), "s");
    assert_ne!(eval(&xy, &cat), eval(&yx, &cat));
}

/// `X Δ (Y ⋈ Z)` is not `(X Δ Y) ⋈ Z` — "the two expressions already
/// being typed differently" (Section 6). Exhibit a witness database where
/// the results differ.
#[test]
fn nest_join_does_not_associate_with_join_naively() {
    let cat = catalog(&[(1, 1)], &[(1, 5)], &[(5, 9)]);
    let q_xy = E::eq(E::path("x", &["b"]), E::path("y", &["b"]));
    let q_yz = E::eq(E::path("y", &["c"]), E::path("z", &["c"]));
    // X Δ (Y ⋈ Z): nested sets contain (y, z) pairs.
    let lhs = Plan::scan("X", "x").nest_join(
        Plan::scan("Y", "y").join(Plan::scan("Z", "z"), q_yz.clone()),
        q_xy.clone(),
        E::var("y"),
        "s",
    );
    // (X Δ Y) ⋈ Z: the join predicate r(y, z) cannot even be stated — y is
    // hidden inside the nested set. The nearest typable analogue joins on
    // membership; its result differs.
    let rhs = Plan::scan("X", "x")
        .nest_join(Plan::scan("Y", "y"), q_xy, E::var("y"), "s")
        .join(Plan::scan("Z", "z"), E::lit(true));
    let (l, r) = (eval(&lhs, &cat), eval(&rhs, &cat));
    assert_ne!(l, r);
}
