//! Differential testing of the unnesting strategies.
//!
//! The nested-loop `Apply` plan is the *semantics* of a nested query (the
//! paper's baseline, always correct). Every strategy's rewritten plan is
//! executed against the same randomly generated databases and compared to
//! the oracle:
//!
//! * NestJoin, GanskiWong, FlattenSemiAnti, Optimal must agree **always**;
//! * Kim must agree exactly when no dangling outer tuples satisfy the
//!   predicate — and must *disagree* on the crafted COUNT/SUBSETEQ bug
//!   databases (the bug is part of the spec).

use proptest::prelude::*;
use tmql_algebra::{AggFn, Plan, ScalarExpr as E, SetCmpOp};
use tmql_core::strategy::UnnestStrategy;
use tmql_core::{table2, unnest_plan};
use tmql_exec::{run_values, ExecConfig, JoinAlgo};
use tmql_model::{Record, Ty, Value};
use tmql_storage::{Catalog, Table};

/// Build catalog with X(a: set<int>, b:int, n:int) and Y(b:int, a:int).
/// `x_rows`: (set-elems, b, n); `y_rows`: (b, a).
fn catalog(x_rows: &[(Vec<i64>, i64, i64)], y_rows: &[(i64, i64)]) -> Catalog {
    let mut cat = Catalog::new();
    let mut x = Table::new(
        "X",
        vec![
            ("a".into(), Ty::Set(Box::new(Ty::Int))),
            ("b".into(), Ty::Int),
            ("n".into(), Ty::Int),
        ],
    );
    for (set, b, n) in x_rows {
        let rec = Record::new([
            (
                "a".to_string(),
                Value::set(set.iter().copied().map(Value::Int)),
            ),
            ("b".to_string(), Value::Int(*b)),
            ("n".to_string(), Value::Int(*n)),
        ])
        .unwrap();
        x.insert(rec).unwrap();
    }
    cat.register(x).unwrap();
    let mut y = Table::new("Y", vec![("b".into(), Ty::Int), ("a".into(), Ty::Int)]);
    for (b, a) in y_rows {
        let rec = Record::new([
            ("b".to_string(), Value::Int(*b)),
            ("a".to_string(), Value::Int(*a)),
        ])
        .unwrap();
        y.insert(rec).unwrap();
    }
    cat.register(y).unwrap();
    cat
}

/// SELECT x FROM X x WHERE P(x, z) WITH z = SELECT y.a FROM Y y WHERE x.b = y.b
fn nested_query(pred: E) -> Plan {
    let sub = Plan::scan("Y", "y")
        .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
        .map(E::path("y", &["a"]), "s");
    Plan::scan("X", "x")
        .apply(sub, "z")
        .select(pred)
        .map(E::var("x"), "out")
}

fn results(plan: &Plan, cat: &Catalog, algo: JoinAlgo) -> std::collections::BTreeSet<Value> {
    run_values(plan, cat, &ExecConfig::with_join_algo(algo)).expect("execution succeeds")
}

/// Predicates exercising every Table 2 row (x.a is set-valued; x.n is the
/// atomic attribute).
fn predicate_corpus() -> Vec<(&'static str, E)> {
    let xa = || E::path("x", &["a"]);
    let xn = || E::path("x", &["n"]);
    let z = || E::var("z");
    vec![
        (
            "z = ∅",
            E::set_cmp(SetCmpOp::SetEq, z(), E::Lit(Value::empty_set())),
        ),
        (
            "count(z) = 0",
            E::cmp(
                tmql_algebra::CmpOp::Eq,
                E::agg(AggFn::Count, z()),
                E::lit(0i64),
            ),
        ),
        (
            "count(z) ≠ 0",
            E::cmp(
                tmql_algebra::CmpOp::Ne,
                E::agg(AggFn::Count, z()),
                E::lit(0i64),
            ),
        ),
        ("x.n = count(z)", E::eq(xn(), E::agg(AggFn::Count, z()))),
        ("x.n ∈ z", E::set_cmp(SetCmpOp::In, xn(), z())),
        ("x.n ∉ z", E::set_cmp(SetCmpOp::NotIn, xn(), z())),
        ("x.a ⊆ z", E::set_cmp(SetCmpOp::SubsetEq, xa(), z())),
        ("x.a ⊂ z", E::set_cmp(SetCmpOp::Subset, xa(), z())),
        ("x.a ⊇ z", E::set_cmp(SetCmpOp::SupersetEq, xa(), z())),
        ("x.a ⊃ z", E::set_cmp(SetCmpOp::Superset, xa(), z())),
        ("x.a = z", E::set_cmp(SetCmpOp::SetEq, xa(), z())),
        ("x.a ≠ z", E::set_cmp(SetCmpOp::SetNe, xa(), z())),
        ("x.a ∩ z = ∅", E::set_cmp(SetCmpOp::Disjoint, xa(), z())),
        ("x.a ∩ z ≠ ∅", E::set_cmp(SetCmpOp::Intersects, xa(), z())),
        (
            "x.n < max(z)",
            E::cmp(tmql_algebra::CmpOp::Lt, xn(), E::agg(AggFn::Max, z())),
        ),
        (
            "x.n > min(z)",
            E::cmp(tmql_algebra::CmpOp::Gt, xn(), E::agg(AggFn::Min, z())),
        ),
        (
            "∃v ∈ z (v < x.n)",
            E::quant(
                tmql_algebra::Quantifier::Exists,
                "v",
                z(),
                E::cmp(tmql_algebra::CmpOp::Lt, E::var("v"), xn()),
            ),
        ),
        (
            "∀v ∈ z (v ≠ x.n)",
            E::quant(
                tmql_algebra::Quantifier::Forall,
                "v",
                z(),
                E::cmp(tmql_algebra::CmpOp::Ne, E::var("v"), xn()),
            ),
        ),
    ]
}

/// Strategies that must always agree with the nested-loop oracle.
const CORRECT: [UnnestStrategy; 5] = [
    UnnestStrategy::GanskiWong,
    UnnestStrategy::Muralikrishna,
    UnnestStrategy::NestJoin,
    UnnestStrategy::FlattenSemiAnti,
    UnnestStrategy::Optimal,
];

fn check_catalog(cat: &Catalog) {
    for (name, pred) in predicate_corpus() {
        let base = nested_query(pred);
        let oracle = results(&base, cat, JoinAlgo::Auto);
        for strat in CORRECT {
            let plan = unnest_plan(base.clone(), strat);
            for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
                let got = results(&plan, cat, algo);
                assert_eq!(
                    got,
                    oracle,
                    "strategy {} / algo {:?} disagrees on predicate `{name}`",
                    strat.name(),
                    algo,
                );
            }
        }
    }
}

#[test]
fn fixed_database_with_dangling_rows() {
    // x1 matches two y's; x2 matches none (dangling — the bug trigger);
    // x3 matches one.
    let cat = catalog(
        &[(vec![10, 11], 1, 2), (vec![], 9, 0), (vec![30], 3, 1)],
        &[(1, 10), (1, 11), (3, 30)],
    );
    check_catalog(&cat);
}

#[test]
fn kim_exhibits_the_count_bug_here() {
    // Dangling x with n = 0 must appear in the oracle for x.n = count(z)
    // but vanish under Kim.
    let cat = catalog(&[(vec![], 9, 0), (vec![10], 1, 1)], &[(1, 10)]);
    let pred = E::eq(E::path("x", &["n"]), E::agg(AggFn::Count, E::var("z")));
    let base = nested_query(pred);
    let oracle = results(&base, &cat, JoinAlgo::Auto);
    assert_eq!(oracle.len(), 2, "both rows satisfy the nested query");
    let kim = results(
        &unnest_plan(base, UnnestStrategy::Kim),
        &cat,
        JoinAlgo::Auto,
    );
    assert_eq!(kim.len(), 1, "Kim loses the dangling tuple — the COUNT bug");
    assert!(kim.is_subset(&oracle));
}

#[test]
fn kim_exhibits_the_subseteq_bug_here() {
    // x.a = ∅ ⊆ z holds for every z, including for the dangling row.
    let cat = catalog(&[(vec![], 9, 0), (vec![10], 1, 1)], &[(1, 10)]);
    let pred = E::set_cmp(SetCmpOp::SubsetEq, E::path("x", &["a"]), E::var("z"));
    let base = nested_query(pred);
    let oracle = results(&base, &cat, JoinAlgo::Auto);
    assert_eq!(oracle.len(), 2);
    let kim = results(
        &unnest_plan(base, UnnestStrategy::Kim),
        &cat,
        JoinAlgo::Auto,
    );
    assert_eq!(
        kim.len(),
        1,
        "Kim loses the dangling tuple — the SUBSETEQ bug"
    );
}

#[test]
fn kim_agrees_when_no_dangling_tuples() {
    // Every x.b has matching y rows → Kim's transformation is safe.
    let cat = catalog(
        &[(vec![10], 1, 1), (vec![10, 11], 1, 2), (vec![30], 3, 1)],
        &[(1, 10), (1, 11), (3, 30)],
    );
    for (name, pred) in predicate_corpus() {
        let base = nested_query(pred);
        let oracle = results(&base, &cat, JoinAlgo::Auto);
        let plan = unnest_plan(base, UnnestStrategy::Kim);
        let got = results(&plan, &cat, JoinAlgo::Auto);
        assert_eq!(got, oracle, "Kim without dangling tuples on `{name}`");
    }
}

#[test]
fn table2_rows_execute_equivalently() {
    // Each Table 2 entry's predicate, executed under Optimal vs oracle.
    let cat = catalog(
        &[
            (vec![10, 11], 1, 2),
            (vec![], 9, 0),
            (vec![10], 1, 1),
            (vec![30, 31], 3, 0),
        ],
        &[(1, 10), (1, 11), (3, 30)],
    );
    for entry in table2::entries() {
        let base = nested_query(entry.pred.clone());
        let oracle = results(&base, &cat, JoinAlgo::Auto);
        let plan = unnest_plan(base, UnnestStrategy::Optimal);
        let got = results(&plan, &cat, JoinAlgo::Auto);
        assert_eq!(got, oracle, "Table 2 row `{}`", entry.form);
        // Rows the paper marks grouping-free must actually flatten.
        if entry.expected.avoids_grouping() {
            let flat = unnest_plan(nested_query(entry.pred.clone()), UnnestStrategy::Optimal);
            assert!(!flat.has_nest_join(), "row `{}` should flatten", entry.form);
            assert!(!flat.has_apply(), "row `{}` should decorrelate", entry.form);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized databases: all correct strategies agree with the oracle
    /// on every corpus predicate.
    #[test]
    fn strategies_agree_on_random_databases(
        x_rows in prop::collection::vec(
            (prop::collection::vec(0i64..6, 0..3), 0i64..5, 0i64..4),
            0..6,
        ),
        y_rows in prop::collection::vec((0i64..5, 0i64..6), 0..8),
    ) {
        let cat = catalog(&x_rows, &y_rows);
        for (name, pred) in predicate_corpus() {
            let base = nested_query(pred);
            let oracle = results(&base, &cat, JoinAlgo::Auto);
            for strat in CORRECT {
                let plan = unnest_plan(base.clone(), strat);
                let got = results(&plan, &cat, JoinAlgo::Auto);
                prop_assert_eq!(
                    &got, &oracle,
                    "strategy {} disagrees on `{}`", strat.name(), name
                );
            }
        }
    }
}
