//! Observability primitives shared by every layer of the engine.
//!
//! This crate is a dependency-free leaf so that storage, exec, and the
//! facade can all register into one [`MetricsRegistry`] without cyclic
//! imports: storage publishes buffer-pool and WAL activity, exec
//! publishes its work counters, and the facade adds query/transaction
//! accounting plus a per-query latency histogram. The registry renders
//! Prometheus-style text exposition (`Database::metrics_text()`, shell
//! `\metrics`), ready for the future network front-end to serve from a
//! `/metrics` endpoint.
//!
//! The [`json`] module hand-rolls the tiny subset of JSON the query log
//! needs (the build environment has no serde), and [`QueryLog`] is the
//! append-only JSONL sink behind `TMQL_QUERY_LOG`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod json;
pub mod log;
pub mod registry;

pub use log::QueryLog;
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};

/// FNV-1a 64-bit hash — the same cheap, dependency-free hash the WAL
/// uses for record checksums. The query log uses it to identify query
/// text without storing the (possibly sensitive, possibly huge) source.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Render a nanosecond span as a short human duration (`184ns`,
/// `12.3µs`, `45.6ms`, `1.23s`) for profile trees and `\stats`.
pub fn human_duration_nanos(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn durations_humanize() {
        assert_eq!(human_duration_nanos(184), "184ns");
        assert_eq!(human_duration_nanos(12_340), "12.3µs");
        assert_eq!(human_duration_nanos(45_600_000), "45.6ms");
        assert_eq!(human_duration_nanos(1_230_000_000), "1.23s");
    }
}
