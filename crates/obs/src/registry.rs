//! A process-local registry of named counters, gauges, and histograms
//! with Prometheus text exposition.
//!
//! Instruments are plain `u64` atomics (Prometheus counters/gauges are
//! scraped as numbers; derived rates like pool hit-rate are the
//! scraper's job, so the registry never needs floats). Components
//! either hold a handle ([`Counter`], [`Gauge`], [`Histogram`]) and
//! update it on their hot path, or register a *polled* closure that is
//! sampled at render time — the right shape for stats that already live
//! in engine atomics (pool hits, WAL bytes) and must not be counted
//! twice.
//!
//! Naming scheme (documented in `docs/architecture.md`): every series
//! is `tmql_<layer>_<what>[_total]` — `tmql_pool_*` and `tmql_wal_*`
//! from storage, `tmql_exec_*` from the executor's work counters,
//! `tmql_query_*` / `tmql_txn_*` / `tmql_recovery_*` from the facade.
//! Monotonic counters end in `_total`; point-in-time gauges do not.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A point-in-time gauge handle (set, or ratcheted up with
/// [`Gauge::fetch_max`]).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Ratchet the gauge up to at least `v` (high-water marks).
    pub fn fetch_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

struct HistogramCore {
    /// Upper bucket bounds, ascending; an implicit `+Inf` bucket
    /// follows. Counts are per-bucket (cumulated only at render time).
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 slots
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle over `u64` observations (the engine
/// records wall-clock in integer microseconds).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let c = &self.0;
        let idx = c.bounds.partition_point(|&b| b < v);
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram(count={}, sum={})", self.count(), self.sum())
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    /// Sampled at render time; `true` marks the series a counter
    /// (rendered with `# TYPE ... counter`), `false` a gauge.
    Polled(Box<dyn Fn() -> u64 + Send + Sync>, bool),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    help: String,
    instrument: Instrument,
}

/// A named collection of instruments with Prometheus text exposition.
///
/// Each `Database` owns one registry; there is no global state, so
/// tests and embedded uses stay isolated.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or fetch the existing) counter named `name`.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            if let Instrument::Counter(c) = &e.instrument {
                return c.clone();
            }
            panic!("metric {name} already registered with a different kind");
        }
        let c = Counter::default();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            instrument: Instrument::Counter(c.clone()),
        });
        c
    }

    /// Register (or fetch the existing) gauge named `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            if let Instrument::Gauge(g) = &e.instrument {
                return g.clone();
            }
            panic!("metric {name} already registered with a different kind");
        }
        let g = Gauge::default();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            instrument: Instrument::Gauge(g.clone()),
        });
        g
    }

    /// Register a counter whose value is sampled from `f` at render
    /// time. Use for monotonic totals that already live in engine
    /// atomics (pool misses, WAL appends) so they are never counted in
    /// two places. Re-registering a name replaces the closure.
    pub fn counter_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.polled(name, help, Box::new(f), true);
    }

    /// Register a gauge sampled from `f` at render time (resident
    /// pages, free-list length, WAL size).
    pub fn gauge_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.polled(name, help, Box::new(f), false);
    }

    fn polled(&self, name: &str, help: &str, f: Box<dyn Fn() -> u64 + Send + Sync>, counter: bool) {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter_mut().find(|e| e.name == name) {
            e.instrument = Instrument::Polled(f, counter);
            return;
        }
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            instrument: Instrument::Polled(f, counter),
        });
    }

    /// Register (or fetch the existing) histogram named `name` with the
    /// given ascending upper bucket `bounds` (a `+Inf` bucket is
    /// implicit).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            if let Instrument::Histogram(h) = &e.instrument {
                return h.clone();
            }
            panic!("metric {name} already registered with a different kind");
        }
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let h = Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }));
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            instrument: Instrument::Histogram(h.clone()),
        });
        h
    }

    /// Render every registered series in Prometheus text exposition
    /// format (`# HELP` / `# TYPE` / samples), families sorted by name
    /// for deterministic output.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| entries[a].name.cmp(&entries[b].name));
        let mut out = String::new();
        for i in order {
            let e = &entries[i];
            let ty = match &e.instrument {
                Instrument::Counter(_) | Instrument::Polled(_, true) => "counter",
                Instrument::Gauge(_) | Instrument::Polled(_, false) => "gauge",
                Instrument::Histogram(_) => "histogram",
            };
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} {ty}\n",
                e.name, e.help, e.name
            ));
            match &e.instrument {
                Instrument::Counter(c) => out.push_str(&format!("{} {}\n", e.name, c.get())),
                Instrument::Gauge(g) => out.push_str(&format!("{} {}\n", e.name, g.get())),
                Instrument::Polled(f, _) => out.push_str(&format!("{} {}\n", e.name, f())),
                Instrument::Histogram(h) => {
                    let core = &h.0;
                    let mut cum = 0u64;
                    for (bi, bound) in core.bounds.iter().enumerate() {
                        cum += core.buckets[bi].load(Ordering::Relaxed);
                        out.push_str(&format!("{}_bucket{{le=\"{bound}\"}} {cum}\n", e.name));
                    }
                    cum += core.buckets[core.bounds.len()].load(Ordering::Relaxed);
                    out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {cum}\n", e.name));
                    out.push_str(&format!("{}_sum {}\n", e.name, h.sum()));
                    out.push_str(&format!("{}_count {}\n", e.name, h.count()));
                }
            }
        }
        out
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        write!(f, "MetricsRegistry({n} series)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_polled_render() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("tmql_test_events_total", "events seen");
        c.add(3);
        let g = reg.gauge("tmql_test_depth", "current depth");
        g.set(7);
        reg.gauge_fn("tmql_test_polled", "sampled at render", || 42);
        let text = reg.render();
        assert!(
            text.contains("# TYPE tmql_test_events_total counter"),
            "{text}"
        );
        assert!(text.contains("tmql_test_events_total 3\n"), "{text}");
        assert!(text.contains("# TYPE tmql_test_depth gauge"), "{text}");
        assert!(text.contains("tmql_test_depth 7\n"), "{text}");
        assert!(text.contains("tmql_test_polled 42\n"), "{text}");
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("tmql_test_x_total", "x");
        let b = reg.counter("tmql_test_x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(reg.render().matches("# TYPE tmql_test_x_total").count(), 1);
    }

    #[test]
    fn histogram_buckets_cumulate() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("tmql_test_lat", "latency", &[10, 100, 1000]);
        for v in [5, 50, 50, 500, 5000] {
            h.observe(v);
        }
        let text = reg.render();
        assert!(
            text.contains("tmql_test_lat_bucket{le=\"10\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("tmql_test_lat_bucket{le=\"100\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("tmql_test_lat_bucket{le=\"1000\"} 4\n"),
            "{text}"
        );
        assert!(
            text.contains("tmql_test_lat_bucket{le=\"+Inf\"} 5\n"),
            "{text}"
        );
        assert!(text.contains("tmql_test_lat_sum 5605\n"), "{text}");
        assert!(text.contains("tmql_test_lat_count 5\n"), "{text}");
        // Boundary values land in their own bucket (le is inclusive).
        h.observe(10);
        assert!(reg.render().contains("tmql_test_lat_bucket{le=\"10\"} 2\n"));
    }

    #[test]
    fn families_sort_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("tmql_zz_total", "z");
        reg.counter("tmql_aa_total", "a");
        let text = reg.render();
        let a = text.find("tmql_aa_total").unwrap();
        let z = text.find("tmql_zz_total").unwrap();
        assert!(a < z, "{text}");
    }
}
