//! The append-only JSONL query log behind `TMQL_QUERY_LOG`.
//!
//! One line per statement, flushed per record so `tail -f` and the CI
//! validator always see complete lines. Writes are best-effort: a full
//! disk must never fail a query, so I/O errors are reported once to
//! stderr and then dropped.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Environment variable naming the query-log path.
pub const QUERY_LOG_ENV: &str = "TMQL_QUERY_LOG";

/// Environment variable holding the slow-query threshold in
/// microseconds; statements at or above it log their full `ANALYZE`
/// tree.
pub const SLOW_QUERY_ENV: &str = "TMQL_SLOW_QUERY_MICROS";

/// An append-only JSONL sink shared by every statement of a `Database`.
#[derive(Debug)]
pub struct QueryLog {
    path: PathBuf,
    file: Mutex<File>,
    warned: AtomicBool,
}

impl QueryLog {
    /// Open (creating or appending to) the log at `path`.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            warned: AtomicBool::new(false),
        })
    }

    /// Build a log from `TMQL_QUERY_LOG`, if set and openable (an
    /// unopenable path warns on stderr rather than failing the
    /// database).
    pub fn from_env() -> Option<Self> {
        let path = std::env::var_os(QUERY_LOG_ENV)?;
        if path.is_empty() {
            return None;
        }
        match Self::create(PathBuf::from(&path)) {
            Ok(log) => Some(log),
            Err(e) => {
                eprintln!("tmql: cannot open query log {path:?}: {e}");
                None
            }
        }
    }

    /// Where this log writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record (a single line of JSON, no trailing newline)
    /// and flush. Best-effort: errors warn once and are otherwise
    /// swallowed.
    pub fn append(&self, line: &str) {
        let mut f = self.file.lock().unwrap();
        let r = f
            .write_all(line.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .and_then(|()| f.flush());
        if let Err(e) = r {
            if !self.warned.swap(true, Ordering::Relaxed) {
                eprintln!("tmql: query log write failed: {e}");
            }
        }
    }
}

/// Read the slow-query threshold from `TMQL_SLOW_QUERY_MICROS`
/// (unset, empty, or unparsable means no threshold).
pub fn slow_query_micros_from_env() -> Option<u64> {
    std::env::var(SLOW_QUERY_ENV).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_one_line_per_record() {
        let path =
            std::env::temp_dir().join(format!("tmql_qlog_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = QueryLog::create(&path).unwrap();
        log.append("{\"a\":1}");
        log.append("{\"b\":2}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        // Re-opening appends rather than truncating.
        let log2 = QueryLog::create(&path).unwrap();
        log2.append("{\"c\":3}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
