//! The minimal JSON surface the query log needs: string escaping, a
//! flat object builder for emitting one JSONL record per statement, and
//! a strict validator used by the test suite (and CI) to prove every
//! emitted line is well-formed JSON with the required keys. No serde in
//! the build environment — this is the honest hand-rolled subset.

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builds one flat JSON object, keys in insertion order.
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    fields: Vec<String>,
}

impl ObjectBuilder {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Add a float field; non-finite values become `null` (JSON has no
    /// Inf/NaN).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        let v = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push(format!("\"{}\":{v}", escape(key)));
        self
    }

    /// Render the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Strictly parse `line` as a single JSON object and return its
/// top-level keys in order. Errors name the offending byte offset.
/// This is the validator behind the query-log schema tests: it accepts
/// exactly the JSON grammar (objects, arrays, strings with escapes,
/// numbers, booleans, null) and nothing else — trailing garbage fails.
pub fn parse_object_keys(line: &str) -> Result<Vec<String>, String> {
    let b = line.as_bytes();
    let mut pos = 0usize;
    let keys = parse_object(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(keys)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Vec<String>, String> {
    skip_ws(b, pos);
    if b.get(*pos) != Some(&b'{') {
        return Err(format!("expected '{{' at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut keys = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(keys);
    }
    loop {
        skip_ws(b, pos);
        keys.push(parse_string(b, pos)?);
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(keys);
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(&b'{') => parse_object(b, pos).map(|_| ()),
        Some(&b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(&b'"') => parse_string(b, pos).map(|_| ()),
        Some(&b't') => expect_lit(b, pos, b"true"),
        Some(&b'f') => expect_lit(b, pos, b"false"),
        Some(&b'n') => expect_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("expected a JSON value at byte {pos}", pos = *pos)),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(&b'e') | Some(&b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(&b'+') | Some(&b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let start = *pos;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| format!("bad utf8 at byte {start}"));
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(&b'"') => out.push(b'"'),
                    Some(&b'\\') => out.push(b'\\'),
                    Some(&b'/') => out.push(b'/'),
                    Some(&b'n') => out.push(b'\n'),
                    Some(&b'r') => out.push(b'\r'),
                    Some(&b't') => out.push(b'\t'),
                    Some(&b'b') => out.push(0x08),
                    Some(&b'f') => out.push(0x0c),
                    Some(&b'u') => {
                        if *pos + 4 >= b.len() {
                            return Err(format!("truncated \\u escape at byte {pos}", pos = *pos));
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        // Surrogate pairs are validated only as hex here;
                        // the log never emits astral-plane escapes.
                        if let Some(ch) = char::from_u32(hex) {
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        }
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            c if c < 0x20 => return Err(format!("raw control byte at {pos}", pos = *pos)),
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_through_validator() {
        let line = ObjectBuilder::new()
            .str("query", "select \"x\"\nfrom t")
            .u64("rows", 42)
            .f64("qerror", 1.5)
            .f64("inf", f64::INFINITY)
            .finish();
        let keys = parse_object_keys(&line).expect("valid JSON");
        assert_eq!(keys, vec!["query", "rows", "qerror", "inf"]);
        assert!(line.contains("\"inf\":null"), "{line}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(parse_object_keys("{").is_err());
        assert!(parse_object_keys("{}extra").is_err());
        assert!(parse_object_keys("{\"a\":}").is_err());
        assert!(parse_object_keys("{\"a\":1,}").is_err());
        assert!(parse_object_keys("{\"a\":01e}").is_err());
        assert!(parse_object_keys("[1,2]").is_err());
        assert!(parse_object_keys("{\"a\":\"unterminated}").is_err());
    }

    #[test]
    fn validator_accepts_nested_values() {
        let keys = parse_object_keys(
            "{\"a\": [1, -2.5, 3e4], \"b\": {\"c\": true, \"d\": null}, \"e\": \"\\u0041\"}",
        )
        .unwrap();
        assert_eq!(keys, vec!["a", "b", "e"]);
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
