//! Facade-level spill acceptance: with `memory_budget_rows` set below the
//! hash build side, a join over data ≥ 4× the budget completes with
//! `rows_spilled > 0`, keeps `peak_resident_rows` within the budget plus
//! batch-granular slack, and returns results identical to the unbounded
//! run.

use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_storage::table::int_table;

/// X(n, b), Y(a, b): n rows each, b = key % MODB on both sides, y.a = a
/// row id — so `x.n IN (SELECT y.a ...)` matches every X row while the
/// semijoin's build side is the full Y extension.
fn join_db(n: i64, modb: i64) -> Database {
    let mut db = Database::new();
    let x: Vec<Vec<i64>> = (0..n).map(|i| vec![i, i % modb]).collect();
    let y: Vec<Vec<i64>> = (0..n).map(|i| vec![i, i % modb]).collect();
    db.register_table(int_table(
        "X",
        &["n", "b"],
        &x.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    ))
    .unwrap();
    db.register_table(int_table(
        "Y",
        &["a", "b"],
        &y.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    ))
    .unwrap();
    db
}

/// Membership query that flattens to a hash semijoin on (n = a, b = b):
/// the paper's Theorem 1 case, with a build side the size of Y. The
/// projected column keeps the result small so the join — not result
/// collection — dominates residency.
const MEMBER: &str = "SELECT x.b FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)";

#[test]
fn budgeted_join_spills_stays_bounded_and_agrees() {
    let budget = 512usize;
    let batch = 256usize;
    let n = 4096i64; // 8× the budget on each side
    let db = join_db(n, 64);

    let free = db
        .query_with(MEMBER, QueryOptions::default().batch_size(batch))
        .unwrap();
    assert_eq!(free.metrics.rows_spilled, 0, "no budget, no spilling");

    let opts = QueryOptions::default()
        .batch_size(batch)
        .memory_budget(budget);
    let tight = db.query_with(MEMBER, opts).unwrap();

    assert_eq!(
        tight.values, free.values,
        "spilling must not change results"
    );
    assert!(
        tight.metrics.rows_spilled > 0,
        "4096-row build side over a 512-row budget spills"
    );
    assert!(tight.metrics.spill_partitions > 0);
    let slack = (3 * batch) as u64;
    assert!(
        tight.metrics.peak_resident_rows <= budget as u64 + slack,
        "peak {} exceeds budget {} + slack {}",
        tight.metrics.peak_resident_rows,
        budget,
        slack
    );
    // The unbounded run really was larger than memory-at-budget: its peak
    // dwarfs the budgeted one.
    assert!(
        free.metrics.peak_resident_rows > 4 * tight.metrics.peak_resident_rows.min(u64::MAX / 4),
        "unbounded peak {} vs budgeted peak {}",
        free.metrics.peak_resident_rows,
        tight.metrics.peak_resident_rows
    );
}

#[test]
fn every_strategy_agrees_under_a_tight_budget() {
    let db = join_db(768, 16);
    let free = db
        .query_with(
            MEMBER,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    for strat in UnnestStrategy::ALL {
        if strat.is_bug_compatible() {
            continue;
        }
        let opts = QueryOptions::default()
            .strategy(strat)
            .batch_size(64)
            .memory_budget(96);
        let r = db.query_with(MEMBER, opts).unwrap();
        assert_eq!(
            r.values,
            free.values,
            "strategy {} diverged under budget",
            strat.name()
        );
    }
}

#[test]
fn profile_reports_spilled_rows_per_operator() {
    let db = join_db(1024, 32);
    let opts = QueryOptions::default().batch_size(128).memory_budget(128);
    let r = db.query_with(MEMBER, opts).unwrap();
    assert!(r.metrics.rows_spilled > 0);
    assert!(
        r.op_profile.contains("spilled="),
        "profile tree must show per-operator spill traffic:\n{}",
        r.op_profile
    );
    // And the unbounded profile stays clean of the annotation.
    let free = db.query_with(MEMBER, QueryOptions::default()).unwrap();
    assert!(!free.op_profile.contains("spilled="), "{}", free.op_profile);
}

#[test]
fn aggregation_and_grouping_spill_and_agree() {
    // COUNT-per-group over a grouped plan: exercises GroupAgg / Nest
    // breaker spilling end to end through the facade.
    let db = join_db(2048, 8);
    let q = "SELECT x.n FROM X x WHERE COUNT((SELECT y.a FROM Y y WHERE x.b = y.b)) > 0";
    let free = db.query_with(q, QueryOptions::default()).unwrap();
    let tight = db
        .query_with(
            q,
            QueryOptions::default().batch_size(128).memory_budget(256),
        )
        .unwrap();
    assert_eq!(tight.values, free.values);
    assert!(tight.metrics.rows_spilled > 0);
    assert!(tight.metrics.peak_resident_rows < free.metrics.peak_resident_rows);
}
