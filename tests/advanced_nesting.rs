//! Beyond the paper's core setting (its Section 9 future work): multiple
//! subqueries per WHERE clause, non-neighbour correlation (a subquery
//! referencing a variable two blocks up), uncorrelated subqueries, and
//! failure-path behaviour. These exercise the optimizer's *safety*: it
//! must rewrite what it can and leave the rest semantically intact.

use tmql::{Database, Plan, QueryOptions, TmqlError, UnnestStrategy};
use tmql_workload::gen::{gen_xy, gen_xyz, GenConfig};

fn xy_db() -> Database {
    let cfg = GenConfig {
        outer: 25,
        inner: 35,
        dangling_fraction: 0.3,
        ..GenConfig::default()
    };
    Database::from_catalog(gen_xy(&cfg))
}

fn xyz_db() -> Database {
    let cfg = GenConfig {
        outer: 18,
        inner: 22,
        dangling_fraction: 0.25,
        ..GenConfig::default()
    };
    Database::from_catalog(gen_xyz(&cfg))
}

fn strategies() -> [UnnestStrategy; 5] {
    [
        UnnestStrategy::Optimal,
        UnnestStrategy::NestJoin,
        UnnestStrategy::GanskiWong,
        UnnestStrategy::Muralikrishna,
        UnnestStrategy::FlattenSemiAnti,
    ]
}

#[test]
fn two_subqueries_in_one_where_clause() {
    // The paper restricts itself to one subquery per WHERE clause
    // ("we do not consider multiple subqueries", Section 4); the
    // implementation handles the conjunction of two.
    let db = xy_db();
    let q = "SELECT x.n FROM X x \
             WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b) \
               AND COUNT((SELECT y2.a FROM Y y2 WHERE x.b = y2.b)) < 5";
    let oracle = db
        .query_with(
            q,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    for strat in strategies() {
        let r = db
            .query_with(q, QueryOptions::default().strategy(strat))
            .unwrap();
        assert_eq!(r.values, oracle.values, "{}", strat.name());
    }
    // Optimal must fully decorrelate: one semijoin-able block, one
    // grouping block.
    let (_, plan) = db.plan_with(q, QueryOptions::default()).unwrap();
    assert!(!plan.has_apply(), "{plan}");
}

#[test]
fn non_neighbour_correlation_stays_correct() {
    // The innermost block references `x`, skipping the middle block — not
    // a "neighbour predicate" (Section 8), so the outer block cannot be
    // decorrelated; the inner one can.
    let db = xyz_db();
    let q = "SELECT x.b FROM X x \
             WHERE x.a SUBSETEQ (SELECT y.a FROM Y y \
                                 WHERE y.b = x.b AND \
                                       COUNT((SELECT z.c FROM Z z WHERE z.d = x.b)) > 0)";
    let oracle = db
        .query_with(
            q,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    for strat in strategies() {
        let r = db
            .query_with(q, QueryOptions::default().strategy(strat))
            .unwrap();
        assert_eq!(r.values, oracle.values, "{}", strat.name());
    }
    // The outer block must keep its Apply (its inner plan references x),
    // under every strategy.
    let (_, plan) = db.plan_with(q, QueryOptions::default()).unwrap();
    assert!(
        plan.has_apply(),
        "non-neighbour correlation cannot flatten\n{plan}"
    );
}

#[test]
fn uncorrelated_subquery_is_constant() {
    // "subqueries without free variables simply are constants"
    // (Section 3.2) — still unnested into a join by every strategy.
    let db = xy_db();
    let q = "SELECT x.n FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE y.a > 2)";
    let oracle = db
        .query_with(
            q,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    for strat in strategies() {
        let r = db
            .query_with(q, QueryOptions::default().strategy(strat))
            .unwrap();
        assert_eq!(r.values, oracle.values, "{}", strat.name());
    }
    let (_, plan) = db.plan_with(q, QueryOptions::default()).unwrap();
    assert!(!plan.has_apply());
}

#[test]
fn triple_nesting_fully_decorrelates_with_neighbour_predicates() {
    let db = xyz_db();
    // x → y → z, each correlation strictly to the neighbour.
    let q = "SELECT x.b FROM X x \
             WHERE x.b IN (SELECT y.b FROM Y y \
                           WHERE y.b = x.b AND \
                                 y.d IN (SELECT z.d FROM Z z WHERE z.d = y.d))";
    let (_, plan) = db.plan_with(q, QueryOptions::default()).unwrap();
    assert!(!plan.has_apply(), "{plan}");
    assert_eq!(
        plan.count_nodes(&mut |n| matches!(n, Plan::SemiJoin { .. })),
        2,
        "two membership blocks → two semijoins\n{plan}"
    );
    let oracle = db
        .query_with(
            q,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    let opt = db.query_with(q, QueryOptions::default()).unwrap();
    assert_eq!(opt.values, oracle.values);
}

#[test]
fn subquery_as_set_operand_in_expressions() {
    // Subqueries compose with set operators in scalar positions.
    let db = xy_db();
    let q = "SELECT x.b FROM X x \
             WHERE x.a SUBSETEQ ((SELECT y.a FROM Y y WHERE x.b = y.b) UNION x.a)";
    let oracle = db
        .query_with(
            q,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    // z appears under a ∪, so classification must refuse to flatten but
    // nest-join strategies still decorrelate the subquery binding.
    let all = db.catalog().table("X").unwrap().len();
    assert_eq!(oracle.len(), all, "s ⊆ (s' ∪ s) is a tautology");
    for strat in strategies() {
        let r = db
            .query_with(q, QueryOptions::default().strategy(strat))
            .unwrap();
        assert_eq!(r.values, oracle.values, "{}", strat.name());
    }
}

#[test]
fn failure_paths_are_errors_not_panics() {
    let db = xy_db();
    // Unknown table (caught by typecheck).
    assert!(matches!(
        db.query("SELECT q FROM Q q"),
        Err(TmqlError::Type(_))
    ));
    // Field access on an integer.
    assert!(db.query("SELECT x.n.w FROM X x").is_err());
    // Division by zero at runtime.
    let err = db.query("SELECT x.n / 0 FROM X x").unwrap_err();
    assert!(matches!(err, TmqlError::Model(_)), "{err}");
    // Aggregate over a non-set.
    assert!(db.query("SELECT COUNT(x.n) FROM X x").is_err());
    // Deeply unbalanced parens.
    assert!(db.query("SELECT ((((x FROM X x").is_err());
}

#[test]
fn typecheck_can_be_disabled_for_trusted_queries() {
    let db = xy_db();
    let opts = QueryOptions {
        typecheck: false,
        ..QueryOptions::default()
    };
    // Well-typed query still runs.
    assert!(db.query_with("SELECT x.n FROM X x", opts).is_ok());
    // An ill-typed query surfaces as a runtime (Model) error instead.
    let err = db.query_with("SELECT x.n.w FROM X x", opts).unwrap_err();
    assert!(matches!(err, TmqlError::Model(_)), "{err}");
}
