//! Experiment E1: the COUNT bug (Section 2).
//!
//! `SELECT * FROM R WHERE R.B = (SELECT COUNT(*) FROM S WHERE R.C = S.C)`
//!
//! Kim's algorithm loses the dangling `R` rows with `b = 0`; the
//! Ganski–Wong outerjoin fix and the paper's nest join keep them. This
//! test demonstrates the bug on the fixed Section 2 fixture and across a
//! dangling-fraction sweep on generated data.

use tmql::{Database, QueryOptions, UnnestStrategy, Value};
use tmql_workload::gen::{gen_rs, GenConfig};
use tmql_workload::queries::COUNT_BUG;
use tmql_workload::schemas::count_bug_catalog;

#[test]
fn fixed_fixture_demonstrates_the_bug() {
    let db = Database::from_catalog(count_bug_catalog());

    let oracle = db
        .query_with(
            COUNT_BUG,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    // Rows a=1 (b=2, two matches), a=2 (b=1, one match), a=3 (b=0,
    // dangling) qualify; a=4 has the wrong count.
    assert_eq!(oracle.len(), 3);
    let has_dangling = oracle
        .values
        .iter()
        .any(|v| v.as_tuple().unwrap().get("a").unwrap() == &Value::Int(3));
    assert!(
        has_dangling,
        "the b=0 dangling row is part of the correct answer"
    );

    // Kim: the bug — exactly the dangling row is missing.
    let kim = db
        .query_with(
            COUNT_BUG,
            QueryOptions::default().strategy(UnnestStrategy::Kim),
        )
        .unwrap();
    assert_eq!(kim.len(), 2, "Kim loses the dangling row");
    assert!(kim.values.iter().all(|v| oracle.values.contains(v)));
    let kim_has_dangling = kim
        .values
        .iter()
        .any(|v| v.as_tuple().unwrap().get("a").unwrap() == &Value::Int(3));
    assert!(
        !kim_has_dangling,
        "the missing row is precisely the dangling one"
    );

    // The fixes.
    for strat in [
        UnnestStrategy::GanskiWong,
        UnnestStrategy::Muralikrishna,
        UnnestStrategy::NestJoin,
        UnnestStrategy::Optimal,
    ] {
        let got = db
            .query_with(COUNT_BUG, QueryOptions::default().strategy(strat))
            .unwrap();
        assert_eq!(
            got.values,
            oracle.values,
            "{} must fix the bug",
            strat.name()
        );
    }
}

#[test]
fn plan_shapes_match_section2() {
    let db = Database::from_catalog(count_bug_catalog());
    // Kim: GROUP BY + regular join (transformation (1) of Section 2).
    let (_, kim) = db
        .plan_with(
            COUNT_BUG,
            QueryOptions::default().strategy(UnnestStrategy::Kim),
        )
        .unwrap();
    assert!(
        kim.any_node(&mut |n| matches!(n, tmql::Plan::GroupAgg { .. })),
        "{kim}"
    );
    assert!(
        kim.any_node(&mut |n| matches!(n, tmql::Plan::Join { .. })),
        "{kim}"
    );
    // Ganski–Wong: outerjoin + ν*.
    let (_, gw) = db
        .plan_with(
            COUNT_BUG,
            QueryOptions::default().strategy(UnnestStrategy::GanskiWong),
        )
        .unwrap();
    assert!(
        gw.any_node(&mut |n| matches!(n, tmql::Plan::LeftOuterJoin { .. })),
        "{gw}"
    );
    assert!(
        gw.any_node(&mut |n| matches!(n, tmql::Plan::Nest { star: true, .. })),
        "{gw}"
    );
    // The paper: one nest join, no outerjoin, no NULLs anywhere.
    let (_, nj) = db
        .plan_with(
            COUNT_BUG,
            QueryOptions::default().strategy(UnnestStrategy::NestJoin),
        )
        .unwrap();
    assert!(nj.has_nest_join(), "{nj}");
    assert!(
        !nj.any_node(&mut |n| matches!(n, tmql::Plan::LeftOuterJoin { .. })),
        "{nj}"
    );
}

#[test]
fn dangling_fraction_sweep() {
    for dangling in [0.0, 0.25, 0.5, 0.9] {
        let cfg = GenConfig {
            outer: 60,
            inner: 90,
            dangling_fraction: dangling,
            ..GenConfig::default()
        };
        let db = Database::from_catalog(gen_rs(&cfg));
        let oracle = db
            .query_with(
                COUNT_BUG,
                QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
            )
            .unwrap();
        let kim = db
            .query_with(
                COUNT_BUG,
                QueryOptions::default().strategy(UnnestStrategy::Kim),
            )
            .unwrap();
        let fixed = db
            .query_with(
                COUNT_BUG,
                QueryOptions::default().strategy(UnnestStrategy::Optimal),
            )
            .unwrap();
        assert_eq!(fixed.values, oracle.values, "dangling={dangling}");

        // Kim's deficit is *exactly* the set of oracle rows whose key has
        // no S partner: only those evaluate `b = COUNT(∅) = 0` correctly
        // in the nested query but vanish from the join. (Even at a 0.0
        // dangling fraction the uniform sampler can leave keys unhit, so
        // we count unmatched keys from the data rather than trusting the
        // knob.)
        let s = db.catalog().table("S").unwrap();
        let matched: std::collections::BTreeSet<&tmql::Value> =
            s.rows().map(|r| r.get("c").unwrap()).collect();
        let lost = oracle
            .values
            .iter()
            .filter(|v| !matched.contains(v.as_tuple().unwrap().get("c").unwrap()))
            .count();
        assert_eq!(
            oracle.len() - kim.len(),
            lost,
            "dangling={dangling}: deficit must equal the unmatched qualifying rows"
        );
        if dangling >= 0.25 {
            assert!(lost > 0, "dangling={dangling}: sweep must exercise the bug");
        }
    }
}
