//! Differential crash-recovery harness: the WAL's acceptance test.
//!
//! A script of catalog statements — `register` / `replace` /
//! `create_index` / `drop_index`, some grouped into explicit
//! transactions — runs against a disk database while an armed
//! [`IoFailpoint`] kills (or tears) the process at one I/O boundary.
//! A shadow interpreter tracks the state every *acknowledged* commit
//! promised. After the crash, reopening must yield **exactly a
//! committed prefix**: the last acknowledged state, or — when the crash
//! landed between the WAL fsync and the statement's acknowledgment —
//! the very next one. Tables, the catalog, and secondary indexes all
//! have to agree with the shadow, and every recovered index must answer
//! probes identically to one freshly rebuilt from the recovered rows.
//!
//! Two drivers share the machinery:
//!
//! * a deterministic sweep that counts the boundary ops of a fixed
//!   script, then re-runs it once per boundary with a kill right there;
//! * a proptest over random scripts × random failpoints × kill/torn
//!   mode.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use tmql::{Database, TmqlError, Value};
use tmql_storage::table::int_table;
use tmql_storage::{IoFailpoint, OrdIndex, Table};

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("tmql-crash-{}-{tag}-{n}.tmdb", std::process::id()))
}

fn clean(path: &Path) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(PathBuf::from(wal));
}

const TABLES: [&str; 3] = ["T0", "T1", "T2"];
const ATTRS: [&str; 2] = ["a", "b"];

/// One scripted statement. Table contents are a pure function of
/// `(slot, seed)`, so the shadow can regenerate them at checking time.
#[derive(Debug, Clone, Copy)]
enum Op {
    Begin,
    Commit,
    Rollback,
    Register(usize, u16),
    Replace(usize, u16),
    CreateIndex(usize, usize),
    DropIndex(usize, usize),
}

fn rows_for(slot: usize, seed: u16) -> Vec<Vec<i64>> {
    let n = i64::from(seed % 40) + 1;
    let stride = slot as i64 + 2;
    let modb = i64::from(seed % 7) + 1;
    (0..n)
        .map(|i| vec![i * stride + i64::from(seed), i % modb])
        .collect()
}

fn make_table(slot: usize, seed: u16) -> Table {
    let rows = rows_for(slot, seed);
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    int_table(TABLES[slot], &ATTRS, &refs)
}

/// What the database should contain: per-table generation parameters
/// plus the set of secondary indexes.
#[derive(Debug, Clone, Default, PartialEq)]
struct Shadow {
    tables: BTreeMap<String, (usize, u16)>,
    indexes: BTreeSet<(String, String)>,
}

/// Mirrors the engine's *pre-statement* validation: invalid ops error
/// without touching any state (and without aborting a transaction).
fn is_valid(visible: &Shadow, txn_open: bool, op: Op) -> bool {
    match op {
        Op::Begin => !txn_open,
        Op::Commit | Op::Rollback => txn_open,
        Op::Register(t, _) => !visible.tables.contains_key(TABLES[t]),
        Op::Replace(..) | Op::DropIndex(..) => true,
        Op::CreateIndex(t, a) => {
            visible.tables.contains_key(TABLES[t])
                && !visible
                    .indexes
                    .contains(&(TABLES[t].to_string(), ATTRS[a].to_string()))
        }
    }
}

/// Apply a (valid) data statement to a shadow. `replace` keeps existing
/// indexes — the engine rebuilds them over the new rows.
fn apply_data(shadow: &mut Shadow, op: Op) {
    match op {
        Op::Register(t, s) | Op::Replace(t, s) => {
            shadow.tables.insert(TABLES[t].to_string(), (t, s));
        }
        Op::CreateIndex(t, a) => {
            shadow
                .indexes
                .insert((TABLES[t].to_string(), ATTRS[a].to_string()));
        }
        Op::DropIndex(t, a) => {
            shadow
                .indexes
                .remove(&(TABLES[t].to_string(), ATTRS[a].to_string()));
        }
        Op::Begin | Op::Commit | Op::Rollback => {}
    }
}

fn exec(db: &mut Database, op: Op) -> Result<(), TmqlError> {
    match op {
        Op::Begin => db.begin(),
        Op::Commit => db.commit(),
        Op::Rollback => db.rollback(),
        Op::Register(t, s) => db.register_table(make_table(t, s)),
        Op::Replace(t, s) => db
            .catalog_mut()
            .replace(make_table(t, s))
            .map_err(TmqlError::from),
        Op::CreateIndex(t, a) => db.create_index(TABLES[t], ATTRS[a]),
        Op::DropIndex(t, a) => db.drop_index(TABLES[t], ATTRS[a]).map(|_| ()),
    }
}

/// Run a script against `path` under whatever failpoint is armed.
/// Returns the history of *commit-attempt* states (`history[0]` is the
/// empty initial state) and the index of the last acknowledged one.
/// Stops at the first injected crash, as a killed process would.
fn run_script(path: &Path, ops: &[Op]) -> (Vec<Shadow>, usize) {
    let Ok(mut db) = Database::open_with(path, 8) else {
        // The failpoint killed even the file's creation: nothing exists.
        return (vec![Shadow::default()], 0);
    };
    // A small threshold makes automatic checkpoints part of the swept
    // boundary space instead of only firing at close.
    db.set_wal_checkpoint_bytes(32 * 1024);
    let mut committed = Shadow::default();
    let mut visible = Shadow::default();
    let mut txn_open = false;
    let mut history = vec![committed.clone()];
    let mut acked = 0usize;

    for &op in ops {
        if !is_valid(&visible, txn_open, op) {
            assert!(
                exec(&mut db, op).is_err(),
                "engine accepted an invalid statement: {op:?}"
            );
            continue;
        }
        // A durability point: an auto-commit mutation outside a
        // transaction, or COMMIT itself. (A drop of a nonexistent index
        // writes nothing and commits nothing.)
        let commit_attempt = match op {
            Op::Commit => true,
            Op::Register(..) | Op::Replace(..) | Op::CreateIndex(..) => !txn_open,
            Op::DropIndex(t, a) => {
                !txn_open
                    && visible
                        .indexes
                        .contains(&(TABLES[t].to_string(), ATTRS[a].to_string()))
            }
            Op::Begin | Op::Rollback => false,
        };
        let candidate = match op {
            Op::Rollback => committed.clone(),
            _ => {
                let mut c = visible.clone();
                apply_data(&mut c, op);
                c
            }
        };
        if commit_attempt {
            history.push(candidate.clone());
        }
        match exec(&mut db, op) {
            Ok(()) => {
                match op {
                    Op::Begin => txn_open = true,
                    Op::Commit | Op::Rollback => txn_open = false,
                    _ => {}
                }
                visible = candidate;
                if commit_attempt {
                    acked = history.len() - 1;
                    committed = visible.clone();
                }
            }
            Err(e) => {
                assert!(
                    e.to_string().contains("injected crash"),
                    "unexpected engine error for {op:?}: {e}"
                );
                break; // the process is dead
            }
        }
    }
    (history, acked)
}

fn state_matches(db: &Database, shadow: &Shadow) -> bool {
    let names: BTreeSet<String> = db.catalog().table_names().map(str::to_string).collect();
    let want: BTreeSet<String> = shadow.tables.keys().cloned().collect();
    if names != want {
        return false;
    }
    for (name, &(t, seed)) in &shadow.tables {
        let expect = make_table(t, seed);
        let got = db.catalog().table(name).unwrap();
        if !got.same_contents(&expect).unwrap() {
            return false;
        }
    }
    let idx: BTreeSet<(String, String)> =
        db.indexes().into_iter().map(|(t, a, _)| (t, a)).collect();
    idx == shadow.indexes
}

/// Every recovered index must answer probes exactly like one freshly
/// rebuilt from the recovered rows (the `strategy_differential` index
/// consistency, applied post-crash).
fn assert_index_consistency(db: &Database, shadow: &Shadow) {
    for (tname, attr) in &shadow.indexes {
        let table = db.catalog().table(tname).unwrap();
        let persisted = db
            .catalog()
            .index_on(tname, attr)
            .expect("matched shadow has this index");
        let fresh = OrdIndex::build(table, attr).unwrap();
        assert_eq!(persisted.len(), fresh.len(), "{tname}.{attr} entry count");
        let &(t, seed) = shadow.tables.get(tname).expect("indexed table exists");
        let col = usize::from(attr == "b");
        for row in rows_for(t, seed) {
            let key = Value::Int(row[col]);
            assert_eq!(
                persisted.probe_eq(&key),
                fresh.probe_eq(&key),
                "{tname}.{attr} probe {key:?} diverged after recovery"
            );
        }
        assert!(persisted.probe_eq(&Value::Int(i64::MIN)).is_empty());
    }
}

/// Reopen after a crash and check the recovered state is a committed
/// prefix: `history[acked]`, or `history[acked + 1]` when the crash hit
/// after the WAL fsync of the next commit but before its
/// acknowledgment.
fn assert_committed_prefix(path: &Path, history: &[Shadow], acked: usize) {
    let db = Database::open_with(path, 8).unwrap();
    let mut allowed: Vec<&Shadow> = vec![&history[acked]];
    if let Some(next) = history.get(acked + 1) {
        allowed.push(next);
    }
    let Some(matched) = allowed.iter().find(|s| state_matches(&db, s)) else {
        panic!(
            "recovered state is not a committed prefix: acked {acked}, \
             {} attempt(s), recovery {:?}, recovered tables {:?}",
            history.len() - 1,
            db.recovery_report(),
            db.catalog().table_names().collect::<Vec<_>>(),
        );
    };
    assert_index_consistency(&db, matched);
}

/// The deterministic matrix: count the fixed script's I/O boundaries,
/// then kill at every single one of them (and once past the end, which
/// must recover the full final state).
#[test]
fn kill_sweep_over_every_io_boundary_recovers_a_committed_prefix() {
    let path = scratch("sweep");
    let script = [
        Op::Register(0, 5),
        Op::CreateIndex(0, 1),
        Op::Begin,
        Op::Replace(0, 9),
        Op::Register(1, 7),
        Op::Commit,
        Op::Begin,
        Op::Replace(1, 3),
        Op::Rollback,
        Op::DropIndex(0, 1),
        Op::Replace(0, 11),
        Op::CreateIndex(1, 0),
        Op::Begin,
        Op::Register(2, 13),
        Op::CreateIndex(2, 1),
        Op::Commit,
    ];
    clean(&path);
    let total = {
        let fp = IoFailpoint::count(&path);
        let (_, acked) = run_script(&path, &script);
        assert_eq!(acked, 7, "the unkilled pass acknowledges every commit");
        fp.ops()
    };
    assert!(
        total > 10,
        "the script must cross many boundaries ({total})"
    );
    for k in 0..=total {
        clean(&path);
        let fp = IoFailpoint::kill_at(&path, k);
        let (history, acked) = run_script(&path, &script);
        drop(fp);
        assert_committed_prefix(&path, &history, acked);
    }
    clean(&path);
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, 0u16..400).prop_map(|(t, s)| Op::Register(t, s)),
        (0usize..3, 0u16..400).prop_map(|(t, s)| Op::Replace(t, s)),
        (0usize..3, 0usize..2).prop_map(|(t, a)| Op::CreateIndex(t, a)),
        (0usize..3, 0usize..2).prop_map(|(t, a)| Op::DropIndex(t, a)),
        Just(Op::Begin),
        Just(Op::Commit),
        Just(Op::Rollback),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random scripts, random crash point, kill or torn-write mode: the
    /// reopened database is always exactly a committed prefix.
    #[test]
    fn random_interleavings_crash_to_a_committed_prefix(
        ops in prop::collection::vec(arb_op(), 1..24),
        k in 0u64..160,
        torn in any::<bool>(),
    ) {
        let path = scratch("prop");
        clean(&path);
        let fp = if torn {
            IoFailpoint::torn_at(&path, k)
        } else {
            IoFailpoint::kill_at(&path, k)
        };
        let (history, acked) = run_script(&path, &ops);
        drop(fp);
        assert_committed_prefix(&path, &history, acked);
        clean(&path);
    }
}
