//! The observability layer end to end: per-operator timing is
//! zero-impact on results and work counters, `EXPLAIN ANALYZE` carries
//! timing + estimates + spill/pool counters in one tree, the metrics
//! registry exposes pool/WAL/latency series, and the JSONL query log
//! emits parseable records with the pinned schema.

use std::path::PathBuf;

use tmql::{Database, Metrics, QueryOptions};
use tmql_storage::table::int_table;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tmql-observe-{tag}-{}.tmdb", std::process::id()))
}

fn clean(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.clone().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(PathBuf::from(wal));
}

/// `n`-row pair of tables whose correlated-IN query spills under a
/// 32-row budget (the facade's spill doctest, scalable).
fn spill_fixture_sized(db: &mut Database, n: i64) {
    let rows: Vec<Vec<i64>> = (0..n).map(|i| vec![i, i % 8]).collect();
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    db.register_table(int_table("X", &["n", "b"], &refs))
        .unwrap();
    db.register_table(int_table("Y", &["a", "b"], &refs))
        .unwrap();
}

fn spill_fixture(db: &mut Database) {
    spill_fixture_sized(db, 256);
}

const SPILL_QUERY: &str = "SELECT x.b FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)";

/// The work counters that must be identical between a timed and an
/// untimed run: everything except the timing-sensitive shape fields
/// (peak residency and batch counts can wobble under parallel
/// scheduling; they are compared only on serial runs).
fn stable_work(m: &Metrics) -> Metrics {
    let mut m = *m;
    m.peak_resident_rows = 0;
    m.batches_emitted = 0;
    m
}

#[test]
fn timing_collection_changes_neither_results_nor_work() {
    let mut db = Database::new();
    spill_fixture(&mut db);
    for threads in [1usize, 4] {
        for budget in [None, Some(32usize)] {
            let mut opts = QueryOptions::default().threads(threads);
            opts.memory_budget_rows = budget;
            let timed = db
                .query_with(SPILL_QUERY, opts.collect_timing(true))
                .unwrap();
            let untimed = db
                .query_with(SPILL_QUERY, opts.collect_timing(false))
                .unwrap();
            assert_eq!(
                timed.values, untimed.values,
                "threads={threads} budget={budget:?}"
            );
            assert_eq!(
                stable_work(&timed.metrics),
                stable_work(&untimed.metrics),
                "threads={threads} budget={budget:?}"
            );
            if threads == 1 {
                // Serial execution is fully deterministic: every counter
                // (including peak residency and batches) must match.
                assert_eq!(timed.metrics, untimed.metrics, "serial budget={budget:?}");
            }
            // The only observable difference: timed profiles carry
            // wall-clock spans, untimed ones do not.
            assert!(timed.op_profile.contains("time="), "{}", timed.op_profile);
            assert!(
                !untimed.op_profile.contains("time="),
                "{}",
                untimed.op_profile
            );
            assert!(timed.ops.iter().any(|o| o.wall_nanos > 0));
            assert!(untimed.ops.iter().all(|o| o.wall_nanos == 0));
        }
    }
}

#[test]
fn analyze_on_a_spilling_parallel_query_shows_everything_in_one_tree() {
    let path = scratch("analyze");
    clean(&path);
    // A four-page pool under several pages of table data guarantees
    // faults, so pool counters are nonzero.
    let mut db = Database::open_with(&path, 4).unwrap();
    spill_fixture_sized(&mut db, 2048);
    let opts = QueryOptions::default().memory_budget(32).threads(4);
    let report = db.analyze_with(SPILL_QUERY, opts).unwrap();
    assert!(report.contains("== analyze (executed) =="), "{report}");
    // Per-operator: actual rows, estimated rows, wall time, spilled rows.
    assert!(report.contains("rows="), "{report}");
    assert!(report.contains("est="), "{report}");
    assert!(report.contains("time="), "{report}");
    assert!(report.contains("spilled="), "{report}");
    // Run-level counters: spill traffic and pool hits/misses.
    assert!(report.contains("phit="), "{report}");
    assert!(
        !report.contains("pmiss=0 "),
        "pool faults expected: {report}"
    );
    assert!(report.contains("max_qerror="), "{report}");
    assert!(report.contains("total_work="), "{report}");
    // ANALYZE forces timing on even when the session disabled it.
    let report2 = db
        .analyze_with(SPILL_QUERY, opts.collect_timing(false))
        .unwrap();
    assert!(report2.contains("time="), "{report2}");
    drop(db);
    clean(&path);
}

#[test]
fn metrics_text_covers_pool_wal_latency_and_txn_series() {
    let path = scratch("metrics");
    clean(&path);
    let mut db = Database::open_with(&path, 4).unwrap();
    spill_fixture(&mut db);
    db.query(SPILL_QUERY).unwrap();
    db.query(SPILL_QUERY).unwrap();
    assert!(db.query("SELECT x.zz FROM X x").is_err());
    db.begin().unwrap();
    db.register_table(int_table("Z", &["c"], &[&[1]])).unwrap();
    db.commit().unwrap();
    db.begin().unwrap();
    db.rollback().unwrap();

    let text = db.metrics_text();
    // Storage: buffer pool and WAL series, polled from the store.
    assert!(
        text.contains("# TYPE tmql_pool_hits_total counter"),
        "{text}"
    );
    assert!(text.contains("tmql_pool_misses_total"), "{text}");
    assert!(text.contains("tmql_wal_appends_total"), "{text}");
    assert!(text.contains("tmql_wal_fsyncs_total"), "{text}");
    assert!(text.contains("tmql_wal_size_bytes"), "{text}");
    // Executor: cumulative work counters.
    assert!(text.contains("tmql_exec_rows_scanned_total"), "{text}");
    // Facade: query counts, latency histogram, transactions.
    assert!(text.contains("tmql_queries_total 2\n"), "{text}");
    assert!(text.contains("tmql_query_errors_total 1\n"), "{text}");
    assert!(text.contains("tmql_query_wall_micros_count 2\n"), "{text}");
    assert!(
        text.contains("tmql_query_wall_micros_bucket{le=\"+Inf\"} 2"),
        "{text}"
    );
    assert!(text.contains("tmql_txn_commits_total 1\n"), "{text}");
    assert!(text.contains("tmql_txn_rollbacks_total 1\n"), "{text}");
    // Recovery gauges appear on reopen.
    drop(db);
    let db = Database::open_with(&path, 4).unwrap();
    let text = db.metrics_text();
    assert!(text.contains("tmql_recovery_replayed_txns"), "{text}");
    assert!(text.contains("tmql_recovery_discarded_records"), "{text}");
    drop(db);
    clean(&path);
}

#[test]
fn registry_is_per_database_not_global() {
    let mut a = Database::new();
    spill_fixture(&mut a);
    a.query(SPILL_QUERY).unwrap();
    let b = Database::new();
    assert!(a.metrics_text().contains("tmql_queries_total 1\n"));
    assert!(b.metrics_text().contains("tmql_queries_total 0\n"));
}

/// Keys every query-log record must carry, in emission order.
const REQUIRED_KEYS: &[&str] = &[
    "query_hash",
    "strategy",
    "est_rows",
    "actual_rows",
    "max_qerror",
    "total_work",
    "wall_micros",
    "rows_spilled",
    "pool_hits",
    "pool_misses",
    "wal_appends",
];

#[test]
fn query_log_emits_parseable_jsonl_with_the_pinned_schema() {
    let log_path = std::env::temp_dir().join(format!(
        "tmql-observe-query-log-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&log_path);
    let mut db = Database::new();
    // Programmatic configuration — exactly what TMQL_QUERY_LOG and
    // TMQL_SLOW_QUERY_MICROS wire up at construction, without mutating
    // the process environment under concurrently running tests.
    db.set_query_log(tmql_obs::QueryLog::create(&log_path).unwrap());
    db.set_slow_query_micros(Some(0));

    assert_eq!(db.query_log_path(), Some(log_path.as_path()));
    spill_fixture(&mut db);
    db.query(SPILL_QUERY).unwrap();
    db.query_with(SPILL_QUERY, QueryOptions::default().memory_budget(32))
        .unwrap();
    // Opted-out statements never reach the log.
    db.query_with(
        "SELECT x.n FROM X x",
        QueryOptions::default().query_log(false),
    )
    .unwrap();
    // Failing statements never reach the log either.
    assert!(db.query("SELECT x.zz FROM X x").is_err());

    let body = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 2, "two logged statements:\n{body}");
    let expected_hash = format!("{:016x}", tmql_obs::fnv1a(SPILL_QUERY.as_bytes()));
    for line in &lines {
        let keys = tmql_obs::json::parse_object_keys(line)
            .unwrap_or_else(|e| panic!("invalid JSON ({e}): {line}"));
        for required in REQUIRED_KEYS {
            assert!(
                keys.iter().any(|k| k == required),
                "missing {required}: {line}"
            );
        }
        assert!(line.contains(&expected_hash), "{line}");
        assert!(line.contains("\"strategy\":\"cost-based\""), "{line}");
        // TMQL_SLOW_QUERY_MICROS=0 marks everything slow: the full
        // EXPLAIN ANALYZE tree rides along.
        assert!(
            tmql_obs::json::parse_object_keys(line)
                .unwrap()
                .iter()
                .any(|k| k == "analyze"),
            "{line}"
        );
    }
    // The budgeted run logged its spill traffic.
    assert!(lines[1].contains("\"rows_spilled\":"), "{}", lines[1]);
    assert!(!lines[1].contains("\"rows_spilled\":0,"), "{}", lines[1]);
    let _ = std::fs::remove_file(&log_path);
}
