//! The paper's WITH clause: `WHERE P(x, z) WITH z = (SELECT …)` — the
//! exact notation of the general two-block format in Section 4 — must
//! parse, type-check, translate to the canonical Apply shape, and unnest
//! identically to the inline-subquery spelling.

use tmql::{Database, Plan, QueryOptions, UnnestStrategy};
use tmql_workload::gen::{gen_xy, GenConfig};
use tmql_workload::queries::SUBSETEQ_BUG;

const WITH_SUBSETEQ: &str = "\
SELECT x
FROM X x
WHERE x.a SUBSETEQ z
WITH z = (SELECT y.a FROM Y y WHERE x.b = y.b)";

const WITH_COUNT: &str = "\
SELECT x
FROM X x
WHERE x.n = COUNT(z)
WITH z = (SELECT y.a FROM Y y WHERE x.b = y.b)";

fn db() -> Database {
    let cfg = GenConfig {
        outer: 30,
        inner: 40,
        dangling_fraction: 0.3,
        ..GenConfig::default()
    };
    Database::from_catalog(gen_xy(&cfg))
}

#[test]
fn with_clause_equals_inline_subquery() {
    let db = db();
    let with_version = db.query(WITH_SUBSETEQ).unwrap();
    let inline_version = db.query(SUBSETEQ_BUG).unwrap();
    assert_eq!(with_version.values, inline_version.values);
}

#[test]
fn with_clause_unnests_into_a_nest_join_with_the_users_label() {
    let db = db();
    let (translated, optimized) = db
        .plan_with(WITH_SUBSETEQ, QueryOptions::default())
        .unwrap();
    // The Apply carries the user's name `z`, not a generated label.
    let has_z_apply =
        translated.any_node(&mut |n| matches!(n, Plan::Apply { label, .. } if label == "z"));
    assert!(has_z_apply, "{translated}");
    let has_z_nestjoin =
        optimized.any_node(&mut |n| matches!(n, Plan::NestJoin { label, .. } if label == "z"));
    assert!(has_z_nestjoin, "{optimized}");
}

#[test]
fn with_clause_all_strategies_agree() {
    let db = db();
    for src in [WITH_SUBSETEQ, WITH_COUNT] {
        let oracle = db
            .query_with(
                src,
                QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
            )
            .unwrap();
        for strat in [
            UnnestStrategy::Optimal,
            UnnestStrategy::NestJoin,
            UnnestStrategy::GanskiWong,
            UnnestStrategy::FlattenSemiAnti,
        ] {
            let r = db
                .query_with(src, QueryOptions::default().strategy(strat))
                .unwrap();
            assert_eq!(r.values, oracle.values, "{src} under {}", strat.name());
        }
    }
}

#[test]
fn with_plain_expression_binding() {
    let db = db();
    let r = db
        .query("SELECT (v = x.n, w = lim) FROM X x WHERE x.n < lim WITH lim = 10")
        .unwrap();
    for v in &r.values {
        let t = v.as_tuple().unwrap();
        assert!(t.get("v").unwrap().as_int().unwrap() < 10);
        assert_eq!(t.get("w").unwrap().as_int().unwrap(), 10);
    }
}

#[test]
fn with_chained_bindings() {
    let db = db();
    let r = db
        .query(
            "SELECT x.n FROM X x WHERE x.n >= lo AND x.n < hi \
             WITH lo = 2, hi = lo + 5",
        )
        .unwrap();
    for v in &r.values {
        let n = v.as_int().unwrap();
        assert!((2..7).contains(&n), "{n}");
    }
}

#[test]
fn with_shadowing_rejected() {
    let db = db();
    let err = db
        .query("SELECT x FROM X x WHERE TRUE WITH x = 1")
        .unwrap_err();
    assert!(matches!(err, tmql::TmqlError::Parse(_)), "{err}");
    let err = db
        .query("SELECT x FROM X x WHERE TRUE WITH a = 1, a = 2")
        .unwrap_err();
    assert!(matches!(err, tmql::TmqlError::Parse(_)), "{err}");
}
