//! Experiment T2: reproduce the paper's **Table 2** end-to-end.
//!
//! Every predicate template runs through the full pipeline (parse → type
//! check → translate → classify/unnest → execute) on a generated complex
//! object database. For each row we check (a) the classification matches
//! the paper's rewrite column, (b) the optimized plan has the promised
//! shape (semijoin / antijoin / nest join), and (c) every strategy that
//! claims correctness returns the nested-loop answer.

use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_workload::gen::{gen_xy, GenConfig};
use tmql_workload::queries::table2_templates;

fn db() -> Database {
    let cfg = GenConfig {
        outer: 30,
        inner: 40,
        dangling_fraction: 0.3,
        max_set: 3,
        ..GenConfig::default()
    };
    Database::from_catalog(gen_xy(&cfg))
}

/// The paper's rewrite column: which rows flatten, and to what.
fn expected_shape(name: &str) -> &'static str {
    match name {
        "z = ∅" | "count(z) = 0" | "x.n ∉ z" | "x.a ⊇ z" | "x.a ∩ z = ∅" | "∀w ∈ x.a (w ∉ z)" => {
            "antijoin"
        }
        "count(z) <> 0" | "x.n ∈ z" | "x.a ∩ z ≠ ∅" => "semijoin",
        _ => "nestjoin",
    }
}

#[test]
fn table2_shapes_and_results() {
    let db = db();
    for (name, src) in table2_templates() {
        let oracle = db
            .query_with(
                &src,
                QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
            )
            .unwrap_or_else(|e| panic!("oracle failed on `{name}`: {e}"));
        // Shape check under Optimal.
        let (_, optimized) = db
            .plan_with(
                &src,
                QueryOptions::default().strategy(UnnestStrategy::Optimal),
            )
            .unwrap();
        let shape = expected_shape(name);
        let has = |p: &tmql::Plan, what: &str| -> bool {
            match what {
                "semijoin" => p.any_node(&mut |n| matches!(n, tmql::Plan::SemiJoin { .. })),
                "antijoin" => p.any_node(&mut |n| matches!(n, tmql::Plan::AntiJoin { .. })),
                _ => p.has_nest_join(),
            }
        };
        assert!(
            has(&optimized, shape),
            "row `{name}` should use a {shape}:\n{optimized}"
        );
        if shape != "nestjoin" {
            assert!(
                !optimized.has_nest_join(),
                "row `{name}` must not group:\n{optimized}"
            );
        }
        // Result check under every correct strategy.
        for strat in [
            UnnestStrategy::Optimal,
            UnnestStrategy::NestJoin,
            UnnestStrategy::GanskiWong,
            UnnestStrategy::FlattenSemiAnti,
        ] {
            let got = db
                .query_with(&src, QueryOptions::default().strategy(strat))
                .unwrap_or_else(|e| panic!("{} failed on `{name}`: {e}", strat.name()));
            assert_eq!(
                got.values,
                oracle.values,
                "row `{name}` under {}",
                strat.name()
            );
        }
    }
}

#[test]
fn print_reproduced_table2() {
    // The rendered classifier table (compare with the paper's Table 2).
    let rendered = tmql_core::table2::render();
    println!("{rendered}");
    assert!(rendered.contains("x.a ⊇ z"));
    // Count the grouping-free rows: 9 of 16 have rewrites.
    let rewrites = rendered.matches("∃v ∈ z").count();
    assert_eq!(rewrites, 9, "{rendered}");
}
