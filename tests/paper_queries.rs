//! Experiment E3: the paper's running example queries Q1 and Q2
//! (Section 3.2) on the Employee/Department database.

use tmql::{Database, QueryOptions, UnnestStrategy, Value};
use tmql_workload::queries::{Q1, Q2};
use tmql_workload::schemas::company_catalog;

#[test]
fn q1_departments_with_cohabiting_employee() {
    let db = Database::from_catalog(company_catalog());
    let r = db.query(Q1).unwrap();
    // Only `cs` has an employee (ann) on its own street and city.
    assert_eq!(r.len(), 1);
    let dept = r.values.iter().next().unwrap().as_tuple().unwrap();
    assert_eq!(dept.get("name").unwrap(), &Value::str("cs"));
}

#[test]
fn q1_stays_nested_loop_under_every_strategy() {
    // Q1's subquery operand is the set-valued attribute d.emps — "there is
    // no use to flatten nested queries in which subquery operands are
    // set-valued attributes" (Section 3.2). Every strategy must leave the
    // Apply in place and still compute the right answer.
    let db = Database::from_catalog(company_catalog());
    for strat in UnnestStrategy::ALL {
        let (_, plan) = db
            .plan_with(Q1, QueryOptions::default().strategy(strat))
            .unwrap();
        assert!(
            plan.has_apply(),
            "{}: d.emps must not be flattened\n{plan}",
            strat.name()
        );
        let r = db
            .query_with(Q1, QueryOptions::default().strategy(strat))
            .unwrap();
        assert_eq!(r.len(), 1, "{}", strat.name());
    }
}

#[test]
fn q2_nested_result_contents() {
    let db = Database::from_catalog(company_catalog());
    let r = db.query(Q2).unwrap();
    assert_eq!(r.len(), 3, "one result tuple per department");
    for v in &r.values {
        let t = v.as_tuple().unwrap();
        let dname = t.get("dname").unwrap().as_str().unwrap().to_string();
        let emps = t.get("emps").unwrap().as_set().unwrap();
        match dname.as_str() {
            // ann, bob, dirk live in Enschede — both Enschede departments
            // group all three.
            "cs" | "math" => assert_eq!(emps.len(), 3, "{dname}"),
            // Nobody lives in Amsterdam: the **empty set**, not a lost
            // tuple and not NULL — the nest join's raison d'être.
            "sales" => assert_eq!(emps.len(), 0, "{dname}"),
            other => panic!("unexpected department {other}"),
        }
    }
}

#[test]
fn q2_uses_nest_join_and_matches_nested_loop() {
    let db = Database::from_catalog(company_catalog());
    let (_, plan) = db
        .plan_with(
            Q2,
            QueryOptions::default().strategy(UnnestStrategy::Optimal),
        )
        .unwrap();
    assert!(
        plan.has_nest_join(),
        "SELECT-clause nesting → nest join\n{plan}"
    );
    assert!(!plan.has_apply());

    let oracle = db
        .query_with(
            Q2,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    for strat in [
        UnnestStrategy::Optimal,
        UnnestStrategy::NestJoin,
        UnnestStrategy::GanskiWong,
    ] {
        let r = db
            .query_with(Q2, QueryOptions::default().strategy(strat))
            .unwrap();
        assert_eq!(r.values, oracle.values, "{}", strat.name());
    }
}

#[test]
fn q2_work_drops_when_unnested() {
    // The point of unnesting: the nest join scans EMP once; the nested
    // loop scans it once per department.
    let db = Database::from_catalog(company_catalog());
    let nl = db
        .query_with(
            Q2,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    let nj = db
        .query_with(
            Q2,
            QueryOptions::default().strategy(UnnestStrategy::NestJoin),
        )
        .unwrap();
    assert!(nl.metrics.subquery_invocations > 0);
    assert_eq!(nj.metrics.subquery_invocations, 0);
    assert!(
        nj.metrics.rows_scanned < nl.metrics.rows_scanned,
        "nest join {} vs nested loop {}",
        nj.metrics.rows_scanned,
        nl.metrics.rows_scanned
    );
}

#[test]
fn children_attribute_queries_work() {
    // Exercise the deeply nested children attribute from the Employee
    // class declaration.
    let db = Database::from_catalog(company_catalog());
    let r = db
        .query("SELECT e.name FROM EMP e WHERE EXISTS c IN e.children (c.age < 10)")
        .unwrap();
    // ann (bo, 7), carla (ed, 9), eva (fe, 2).
    assert_eq!(r.len(), 3);
    let r = db
        .query("SELECT c.name FROM EMP e, e.children c WHERE e.address.city = 'Enschede'")
        .unwrap();
    assert_eq!(r.len(), 1); // only ann's bo — bob and dirk are childless
}
