//! Experiment T1: reproduce the paper's **Table 1** exactly — the nest
//! equijoin of `X(e, d)` and `Y(a, b)` on the second attribute with the
//! identity join function:
//!
//! ```text
//! e  d  |  a  b  |  e  d  s(e,d)
//! 1  1  |  1  1  |  1  1  {(1,1),(2,1)}
//! 2  2  |  2  1  |  2  2  ∅
//! 3  3  |  3  3  |  3  3  {(3,3)}
//! ```

use tmql_algebra::{Plan, ScalarExpr as E};
use tmql_exec::{run, ExecConfig, JoinAlgo};
use tmql_model::{Record, Value};
use tmql_workload::schemas::table1_catalog;

fn nest_join_plan() -> Plan {
    Plan::scan("X", "x").nest_join(
        Plan::scan("Y", "y"),
        E::eq(E::path("x", &["d"]), E::path("y", &["b"])),
        E::var("y"),
        "s",
    )
}

fn y_tuple(a: i64, b: i64) -> Value {
    Value::Tuple(
        Record::new([
            ("a".to_string(), Value::Int(a)),
            ("b".to_string(), Value::Int(b)),
        ])
        .unwrap(),
    )
}

#[test]
fn table1_exact_output() {
    let cat = table1_catalog();
    for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
        let (rows, _) = run(&nest_join_plan(), &cat, &ExecConfig::with_join_algo(algo)).unwrap();
        assert_eq!(
            rows.len(),
            3,
            "every X tuple appears exactly once ({algo:?})"
        );

        let by_e = |e: i64| {
            rows.iter()
                .find(|r| {
                    r.get("x").unwrap().as_tuple().unwrap().get("e").unwrap() == &Value::Int(e)
                })
                .unwrap_or_else(|| panic!("x with e={e} present"))
        };

        // Row 1: x=(1,1) matches y=(1,1) and y=(2,1).
        let s1 = by_e(1).get("s").unwrap();
        assert_eq!(s1, &Value::set([y_tuple(1, 1), y_tuple(2, 1)]), "{algo:?}");

        // Row 2: x=(2,2) is dangling — the paper's key cell: s = ∅, not NULL.
        let s2 = by_e(2).get("s").unwrap();
        assert_eq!(s2, &Value::empty_set(), "{algo:?}");
        assert!(!s2.is_null());

        // Row 3: x=(3,3) matches y=(3,3).
        let s3 = by_e(3).get("s").unwrap();
        assert_eq!(s3, &Value::set([y_tuple(3, 3)]), "{algo:?}");
    }
}

#[test]
fn table1_via_outerjoin_and_nu_star_agrees() {
    // Section 6: X Δ Y = ν*(X ⟕ Y) — the algebraic characterization.
    let cat = table1_catalog();
    let outer_nu = Plan::Nest {
        input: Box::new(Plan::LeftOuterJoin {
            left: Box::new(Plan::scan("X", "x")),
            right: Box::new(Plan::scan("Y", "y")),
            pred: E::eq(E::path("x", &["d"]), E::path("y", &["b"])),
        }),
        keys: vec!["x".into()],
        value: E::var("y"),
        label: "s".into(),
        star: true,
    };
    let cfg = ExecConfig::auto();
    let (nj_rows, _) = run(&nest_join_plan(), &cat, &cfg).unwrap();
    let (oj_rows, _) = run(&outer_nu, &cat, &cfg).unwrap();
    let nj: std::collections::BTreeSet<Record> = nj_rows.into_iter().collect();
    let oj: std::collections::BTreeSet<Record> = oj_rows.into_iter().collect();
    assert_eq!(nj, oj);
}

#[test]
fn table1_rendered_for_the_record() {
    // Regenerate the table as text (the examples print this too).
    let cat = table1_catalog();
    let (rows, _) = run(&nest_join_plan(), &cat, &ExecConfig::auto()).unwrap();
    let mut lines: Vec<String> = rows
        .iter()
        .map(|r| {
            let x = r.get("x").unwrap().as_tuple().unwrap();
            format!(
                "{} {} {}",
                x.get("e").unwrap(),
                x.get("d").unwrap(),
                r.get("s").unwrap()
            )
        })
        .collect();
    lines.sort();
    assert_eq!(lines[0], "1 1 {(a = 1, b = 1), (a = 2, b = 1)}");
    assert_eq!(lines[1], "2 2 {}");
    assert_eq!(lines[2], "3 3 {(a = 3, b = 3)}");
}
