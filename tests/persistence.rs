//! Facade-level persistence acceptance:
//!
//! * register → close → open → query round-trips the full complex-object
//!   value universe (NaN floats included) with results differentially
//!   identical to the in-memory path (property-based);
//! * a buffer pool capped well below the table size still answers
//!   identically, with pool residency pinned below the row count;
//! * corrupted and truncated database files surface as
//!   `ModelError::Io`, never a panic.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use tmql::{Database, QueryOptions, TmqlError, Ty, Value};
use tmql_model::{ModelError, Record};
use tmql_storage::table::int_table;
use tmql_storage::{IoFailpoint, IoOp, OrdIndex, Table};

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tmql-persist-{}-{tag}-{n}.tmdb",
        std::process::id()
    ))
}

/// The WAL sidecar a database keeps next to its file.
fn wal_path(path: &Path) -> PathBuf {
    let mut w = path.to_path_buf().into_os_string();
    w.push(".wal");
    PathBuf::from(w)
}

/// Remove a scratch database and its WAL sidecar.
fn clean(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(wal_path(path));
}

/// Arbitrary bounded-depth complex object values — every `Value` kind,
/// with NaN explicitly in the float pool.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(Value::Float),
        Just(Value::Float(f64::NAN)),
        "[a-z]{0,6}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::set),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            ("[a-d]", inner.clone())
                .prop_map(|(l, v)| Value::Variant(Arc::from(l.as_str()), Box::new(v))),
            prop::collection::vec(("[a-d]", inner), 0..3).prop_map(|pairs| {
                let mut rec = Record::empty();
                for (l, v) in pairs {
                    // Skip duplicate labels rather than fail the case.
                    let _ = rec.push(l, v);
                }
                Value::Tuple(rec)
            }),
        ]
    })
}

fn value_table(values: &[Value]) -> Table {
    let mut t = Table::new("T", vec![("v".into(), Ty::Any), ("k".into(), Ty::Int)]);
    for (i, v) in values.iter().enumerate() {
        t.insert(
            Record::new([
                ("v".to_string(), v.clone()),
                ("k".to_string(), Value::Int(i as i64)),
            ])
            .unwrap(),
        )
        .unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: for arbitrary complex-object rows,
    /// register into a disk database, drop it, reopen, and the query
    /// answer is identical to the in-memory database's.
    #[test]
    fn register_close_open_query_round_trips(values in prop::collection::vec(arb_value(), 0..24)) {
        let path = scratch("prop");
        let table = value_table(&values);

        let mut mem = Database::new();
        mem.register_table(table.clone()).unwrap();
        let expected = mem.query("SELECT t.v FROM T t").unwrap();

        {
            let mut disk = Database::open_with(&path, 8).unwrap();
            prop_assert!(disk.is_persistent());
            disk.register_table(table).unwrap();
        } // dropped: the process keeps nothing in memory

        let reopened = Database::open_with(&path, 8).unwrap();
        let got = reopened.query("SELECT t.v FROM T t").unwrap();
        prop_assert_eq!(&got.values, &expected.values, "reopened result diverged");
        prop_assert_eq!(got.len(), values.iter().collect::<std::collections::BTreeSet<_>>().len());
        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Secondary indexes round-trip through the pager: over arbitrary
    /// complex-object keys (NaN floats included), a reopened index
    /// answers every probe exactly like one freshly built from the rows.
    #[test]
    fn index_round_trips_through_disk(values in prop::collection::vec(arb_value(), 1..24)) {
        let path = scratch("ixprop");
        let table = value_table(&values);
        {
            let mut disk = Database::open_with(&path, 8).unwrap();
            disk.register_table(table.clone()).unwrap();
            disk.create_index("T", "v").unwrap();
            disk.create_index("T", "k").unwrap();
        } // dropped: the index must come back from pages, not memory

        let reopened = Database::open_with(&path, 8).unwrap();
        let fresh = OrdIndex::build(&table, "v").unwrap();
        let ix = reopened.catalog().index_on("T", "v").expect("index survived reopen");
        prop_assert_eq!(ix.len(), fresh.len());
        for v in &values {
            prop_assert_eq!(ix.probe_eq(v), fresh.probe_eq(v), "probe diverged for {:?}", v);
        }

        // And the indexed plan answers identically to the in-memory,
        // index-free database.
        let mut mem = Database::new();
        mem.register_table(table).unwrap();
        let q = "SELECT t.v FROM T t WHERE t.k = 0";
        prop_assert_eq!(reopened.query(q).unwrap().values, mem.query(q).unwrap().values);
        let _ = std::fs::remove_file(&path);
    }
}

/// Crash safety: the header is written last, so a crash after the index
/// pages land but before the catalog header commits leaves the *old*
/// catalog — reopening sees no index and never reads a torn one.
#[test]
fn crash_between_index_write_and_commit_keeps_old_catalog() {
    let path = scratch("ixcrash");
    let rows: Vec<Vec<i64>> = (0..500).map(|i| vec![i, i % 10]).collect();
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    {
        let mut disk = Database::open_with(&path, 8).unwrap();
        disk.register_table(int_table("X", &["n", "b"], &refs))
            .unwrap();
    }
    // Snapshot the committed header (page 0) before the index exists.
    let pre_index_header = {
        let bytes = std::fs::read(&path).unwrap();
        bytes[..8192].to_vec()
    };
    {
        let mut disk = Database::open_with(&path, 8).unwrap();
        disk.create_index("X", "b").unwrap();
    }
    // "Crash" before the commit point: the index and new catalog pages
    // are on disk, but the header still references the old catalog. The
    // header-last protocol never reuses the old chain's pages within the
    // same commit, so restoring the old header restores the old catalog.
    use std::io::{Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(0)).unwrap();
    f.write_all(&pre_index_header).unwrap();
    drop(f);

    let reopened = Database::open_with(&path, 8).unwrap();
    assert!(
        reopened.indexes().is_empty(),
        "the un-committed index must not be visible"
    );
    let r = reopened.query("SELECT x.n FROM X x WHERE x.b = 3").unwrap();
    assert_eq!(r.len(), 50);
    assert_eq!(r.metrics.index_probes, 0, "no index to probe");
    let _ = std::fs::remove_file(&path);
}

/// A corrupted index page surfaces as `ModelError::Io` — never a panic,
/// never a silently wrong answer.
#[test]
fn corrupted_index_page_surfaces_as_io_error() {
    let path = scratch("ixcorrupt");
    let rows: Vec<Vec<i64>> = (0..500).map(|i| vec![i, i % 10]).collect();
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    {
        let mut disk = Database::open_with(&path, 8).unwrap();
        disk.register_table(int_table("X", &["n", "b"], &refs))
            .unwrap();
    }
    // The index blob is allocated at the then-end of the file (the free
    // list is empty on a fresh database), so its first page sits exactly
    // at the pre-create-index file length.
    let index_first = std::fs::metadata(&path).unwrap().len();
    {
        let mut disk = Database::open_with(&path, 8).unwrap();
        disk.create_index("X", "b").unwrap();
    }
    use std::io::{Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(index_first)).unwrap();
    f.write_all(&vec![0xCDu8; 8192]).unwrap();
    drop(f);

    match Database::open_with(&path, 8) {
        Err(TmqlError::Model(ModelError::Io(_))) => {}
        Ok(_) => panic!("opening a database with a torn index must fail"),
        Err(other) => panic!("expected ModelError::Io, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// The headline acceptance: a dataset bigger than the buffer pool,
/// closed, reopened, and queried — differentially identical to the
/// in-memory path, with the pool pinned below the table size.
#[test]
fn bounded_pool_database_agrees_with_memory() {
    let path = scratch("bounded");
    let n = 4096i64;
    let rows: Vec<Vec<i64>> = (0..n).map(|i| vec![i, i % 64]).collect();
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    let queries = [
        "SELECT x.b FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)",
        "SELECT x.n FROM X x WHERE COUNT((SELECT y.a FROM Y y WHERE x.b = y.b)) > 0",
        "SELECT x.n FROM X x WHERE x.n < 50",
    ];

    let mut mem = Database::new();
    mem.register_table(int_table("X", &["n", "b"], &refs))
        .unwrap();
    mem.register_table(int_table("Y", &["a", "b"], &refs))
        .unwrap();

    {
        let mut disk = Database::open_with(&path, 4).unwrap();
        disk.register_table(int_table("X", &["n", "b"], &refs))
            .unwrap();
        disk.register_table(int_table("Y", &["a", "b"], &refs))
            .unwrap();
    }
    let disk = Database::open_with(&path, 4).unwrap();

    // The pool is capped far below the table: its 4 frames cannot hold
    // the extent, so residency stays under the page count — and pages
    // hold at most a few hundred rows, so resident rows < row count.
    let (resident, total) = disk.catalog().page_residency("X").unwrap();
    assert!(
        total > 4,
        "4096 rows must span more pages than the 4-frame pool (got {total})"
    );
    assert!(
        resident <= 4,
        "residency is bounded by the pool ({resident}/{total})"
    );
    assert!(
        resident < n as usize,
        "pool residency stays below the row count"
    );

    for q in queries {
        let want = mem.query(q).unwrap();
        let got = disk.query(q).unwrap();
        assert_eq!(
            got.values, want.values,
            "disk-backed answer diverged for {q}"
        );
        assert!(
            got.metrics.pool_hits + got.metrics.pool_misses > 0,
            "disk-backed scans must go through the pool for {q}"
        );
    }

    // Scanning 4096 rows through 4 frames evicts continuously: a second
    // identical scan still faults (the working set exceeds the pool).
    let again = disk.query(queries[0]).unwrap();
    assert!(
        again.metrics.pool_misses > 0,
        "a working set larger than the pool keeps faulting: {}",
        again.metrics
    );
    let _ = std::fs::remove_file(&path);
}

/// A warm pool large enough for the table serves rescans from memory.
#[test]
fn warm_pool_stops_faulting() {
    let path = scratch("warm");
    let rows: Vec<Vec<i64>> = (0..512).map(|i| vec![i, i % 8]).collect();
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    let mut disk = Database::open_with(&path, 64).unwrap();
    disk.register_table(int_table("X", &["n", "b"], &refs))
        .unwrap();
    let cold = disk.query("SELECT x.n FROM X x WHERE x.n < 0").unwrap();
    let warm = disk.query("SELECT x.n FROM X x WHERE x.n < 0").unwrap();
    assert_eq!(
        warm.metrics.pool_misses, 0,
        "warm rescan faulted: {}",
        warm.metrics
    );
    assert!(warm.metrics.pool_hits > 0);
    assert!((warm.metrics.pool_hit_rate() - 1.0).abs() < 1e-12);
    // The estimator's page-I/O charge reflects the temperature: the warm
    // scan is priced cheaper than the cold one was.
    assert!(cold.metrics.pool_misses > 0 || cold.metrics.pool_hits > 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_page_surfaces_as_io_error() {
    let path = scratch("corrupt");
    let rows: Vec<Vec<i64>> = (0..2000).map(|i| vec![i, i % 4]).collect();
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    {
        let mut disk = Database::open_with(&path, 8).unwrap();
        disk.register_table(int_table("X", &["n", "b"], &refs))
            .unwrap();
    }
    // Scribble garbage over the first data page (page 1; page 0 is the
    // header and the catalog chain is written after the data).
    use std::io::{Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(8192)).unwrap();
    f.write_all(&vec![0xABu8; 8192]).unwrap();
    drop(f);

    let disk = Database::open_with(&path, 8).unwrap();
    let err = disk.query("SELECT x.n FROM X x").unwrap_err();
    match err {
        TmqlError::Model(ModelError::Io(msg)) => {
            assert!(msg.contains("page"), "unexpected message: {msg}")
        }
        other => panic!("expected ModelError::Io, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_file_surfaces_as_io_error() {
    let path = scratch("truncated");
    {
        let mut disk = Database::open_with(&path, 8).unwrap();
        let rows: Vec<Vec<i64>> = (0..2000).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        disk.register_table(int_table("X", &["n"], &refs)).unwrap();
    }
    // Chop everything after the header: the catalog chain itself is gone.
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(8192).unwrap();
    drop(f);
    match Database::open_with(&path, 8) {
        Err(TmqlError::Model(ModelError::Io(_))) => {}
        other => panic!("expected ModelError::Io on truncated open, got {other:?}"),
    }
    // And a non-database file is rejected outright.
    std::fs::write(&path, b"not a database").unwrap();
    match Database::open_with(&path, 8) {
        Err(TmqlError::Model(ModelError::Io(_))) => {}
        other => panic!("expected ModelError::Io on bad magic, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// The crash matrix: a counting failpoint first records the workload's I/O
// boundary sequence, then a second identical run is killed (or torn) at a
// semantically chosen boundary. After every crash, reopening must
// recover exactly the committed prefix — the WAL's whole claim.
// ---------------------------------------------------------------------------

/// Crash **between the WAL commit fsync and any page write-back**: the
/// log is the only durable copy of the transaction. Replay must
/// reconstruct it.
#[test]
fn crash_after_wal_sync_before_write_back_recovers_the_commit() {
    let path = scratch("crash-wb");
    let rows: Vec<Vec<i64>> = (0..300).map(|i| vec![i, i % 7]).collect();
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    let run = |path: &Path| {
        let mut db = Database::open_with(path, 8).unwrap();
        // No size-triggered checkpoint: write-back happens only at close.
        db.set_wal_checkpoint_bytes(u64::MAX);
        db.register_table(int_table("X", &["n", "b"], &refs))
    };

    // Pass 1: count. The last WalSync is the commit's durability point;
    // everything after it is write-back (the close-time checkpoint).
    clean(&path);
    let last_sync = {
        let fp = IoFailpoint::count(&path);
        run(&path).unwrap();
        let log = fp.log();
        log.iter()
            .rposition(|op| *op == IoOp::WalSync)
            .expect("the commit synced the WAL") as u64
    };

    // Pass 2: kill immediately after that sync — the checkpoint's first
    // page write (and everything after) fails.
    clean(&path);
    let fp = IoFailpoint::kill_at(&path, last_sync + 1);
    run(&path).unwrap(); // the commit itself was durable before the kill
    assert!(fp.triggered(), "the write-back must have been reached");
    drop(fp);

    let db = Database::open_with(&path, 8).unwrap();
    let rep = db.recovery_report().expect("disk-backed");
    assert_eq!(rep.replayed_txns, 1, "the logged commit was replayed");
    assert_eq!(rep.discarded_records, 0);
    let r = db.query("SELECT x.n FROM X x WHERE x.b = 3").unwrap();
    assert_eq!(r.len(), 43);
    clean(&path);
}

/// Crash **mid-WAL-append** (torn tail): the commit never became
/// durable, so recovery must discard the torn transaction — and say so —
/// while keeping everything committed before it.
#[test]
fn crash_mid_wal_append_discards_the_torn_transaction() {
    let path = scratch("crash-torn");
    let rows: Vec<Vec<i64>> = (0..200).map(|i| vec![i]).collect();
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    let setup = |path: &Path| {
        let mut db = Database::open_with(path, 8).unwrap();
        db.register_table(int_table("X", &["n"], &refs)).unwrap();
        db.wal_checkpoint().unwrap(); // X is checkpoint-durable; WAL empty
        db
    };

    // Pass 1: count the second register's appends. The last WalWrite
    // before the WalSync is the commit record itself.
    clean(&path);
    let last_append = {
        let db = setup(&path);
        let mut db = db;
        let fp = IoFailpoint::count(&path);
        db.register_table(int_table("Y", &["m"], &refs)).unwrap();
        drop(db);
        let log = fp.log();
        let sync = log
            .iter()
            .position(|op| *op == IoOp::WalSync)
            .expect("the commit synced the WAL");
        log[..sync]
            .iter()
            .rposition(|op| matches!(op, IoOp::WalWrite(_)))
            .expect("the commit appended records") as u64
    };

    // Pass 2: tear that append — half the commit record reaches disk.
    clean(&path);
    let mut db = setup(&path);
    let fp = IoFailpoint::torn_at(&path, last_append);
    let err = db
        .register_table(int_table("Y", &["m"], &refs))
        .unwrap_err();
    assert!(err.to_string().contains("injected crash"), "{err}");
    drop(db); // close-time checkpoint also dies: the process is "gone"
    assert!(fp.triggered());
    drop(fp);

    let db = Database::open_with(&path, 8).unwrap();
    let rep = db.recovery_report().expect("disk-backed");
    assert_eq!(rep.replayed_txns, 0, "no commit record, nothing to replay");
    assert!(
        rep.discarded_records >= 1,
        "the torn tail is reported, not silently dropped: {rep:?}"
    );
    assert!(rep.discarded_bytes > 0, "{rep:?}");
    assert!(db.query("SELECT x.n FROM X x").is_ok(), "X survived");
    assert!(
        db.query("SELECT y.m FROM Y y").is_err(),
        "the torn Y must not exist"
    );
    clean(&path);
}

/// Crash **between the commit record and checkpoint completion**: the
/// statement already reported success (its fsync happened), so the
/// failed checkpoint must not lose it — replay reconstructs the pages
/// the write-back never finished.
#[test]
fn crash_between_commit_and_checkpoint_keeps_the_commit() {
    let path = scratch("crash-ckpt");
    let rows: Vec<Vec<i64>> = (0..200).map(|i| vec![i]).collect();
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    let setup = |path: &Path| {
        let mut db = Database::open_with(path, 8).unwrap();
        db.register_table(int_table("X", &["n"], &refs)).unwrap();
        db.wal_checkpoint().unwrap(); // X checkpoint-durable; WAL empty
        db
    };

    // Pass 1: count. With a 1-byte threshold the commit is chased by an
    // automatic checkpoint; its first operation follows the WalSync.
    clean(&path);
    let commit_sync = {
        let mut db = setup(&path);
        db.set_wal_checkpoint_bytes(1);
        let fp = IoFailpoint::count(&path);
        db.register_table(int_table("Y", &["m"], &refs)).unwrap();
        drop(db);
        fp.log()
            .iter()
            .position(|op| *op == IoOp::WalSync)
            .expect("the commit synced the WAL") as u64
    };

    // Pass 2: kill the checkpoint's first operation. The statement still
    // succeeds — its durability point already passed.
    clean(&path);
    let mut db = setup(&path);
    db.set_wal_checkpoint_bytes(1);
    let fp = IoFailpoint::kill_at(&path, commit_sync + 1);
    db.register_table(int_table("Y", &["m"], &refs))
        .expect("the commit was durable before the checkpoint died");
    drop(db);
    assert!(fp.triggered());
    drop(fp);

    let db = Database::open_with(&path, 8).unwrap();
    let rep = db.recovery_report().expect("disk-backed");
    assert_eq!(rep.replayed_txns, 1, "the acknowledged commit came back");
    assert_eq!(db.query("SELECT x.n FROM X x").unwrap().len(), 200);
    assert_eq!(db.query("SELECT y.m FROM Y y").unwrap().len(), 200);
    clean(&path);
}

/// A bit flip **mid-log** (satellite of the WAL-scan unit test, end to
/// end): replay stops at the last valid commit before the flip and the
/// discarded suffix is counted in the recovery report.
#[test]
fn bit_flipped_wal_record_stops_replay_at_last_valid_commit() {
    let path = scratch("crash-flip");
    let rows: Vec<Vec<i64>> = (0..200).map(|i| vec![i]).collect();
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();

    clean(&path);
    let txn1_end;
    {
        let mut db = Database::open_with(&path, 8).unwrap();
        db.set_wal_checkpoint_bytes(u64::MAX); // keep both commits in the log
        db.register_table(int_table("X", &["n"], &refs)).unwrap();
        txn1_end = std::fs::metadata(wal_path(&path)).unwrap().len();
        db.register_table(int_table("Y", &["m"], &refs)).unwrap();
        // Crash the close so the WAL survives intact…
        let _fp = IoFailpoint::kill_at(&path, 0);
        drop(db);
    }
    // …then flip one byte inside the second transaction's first record.
    let wal = wal_path(&path);
    let mut bytes = std::fs::read(&wal).unwrap();
    assert!(bytes.len() as u64 > txn1_end, "txn 2 appended records");
    let victim = txn1_end as usize + 16;
    bytes[victim] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();

    let db = Database::open_with(&path, 8).unwrap();
    let rep = db.recovery_report().expect("disk-backed");
    assert_eq!(rep.replayed_txns, 1, "replay stopped after txn 1: {rep:?}");
    assert!(rep.discarded_records >= 1, "{rep:?}");
    assert!(rep.discarded_bytes > 0, "{rep:?}");
    assert_eq!(db.query("SELECT x.n FROM X x").unwrap().len(), 200);
    assert!(
        db.query("SELECT y.m FROM Y y").is_err(),
        "the corrupt txn 2 must be gone"
    );
    // The reopen checkpointed what it recovered: a second open is clean.
    drop(db);
    let db = Database::open_with(&path, 8).unwrap();
    assert!(db.recovery_report().unwrap().is_clean());
    clean(&path);
}

/// `persist_to` copies an in-memory database wholesale; the copy answers
/// identically after reopen.
#[test]
fn persist_to_copies_a_live_database() {
    let path = scratch("persistto");
    let mut mem = Database::new();
    mem.register_table(int_table("X", &["a", "b"], &[&[1, 1], &[2, 1], &[3, 9]]))
        .unwrap();
    mem.register_table(int_table("Y", &["b", "c"], &[&[1, 10], &[9, 90]]))
        .unwrap();
    mem.create_index("X", "b").unwrap();
    let q = "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c - 9 FROM Y y WHERE x.b = y.b)";
    let want = mem.query(q).unwrap();

    let copy = mem.persist_to(&path, 8).unwrap();
    assert!(copy.is_persistent());
    assert_eq!(
        copy.indexes(),
        vec![("X".to_string(), "b".to_string(), 3)],
        "indexes travel with persist_to"
    );
    assert_eq!(copy.query(q).unwrap().values, want.values);
    drop(copy);

    let reopened = Database::open_with(&path, 8).unwrap();
    assert_eq!(reopened.query(q).unwrap().values, want.values);
    // Options thread through unchanged on the disk path.
    let tight = reopened
        .query_with(q, QueryOptions::default().memory_budget(2))
        .unwrap();
    assert_eq!(tight.values, want.values);

    // Persisting over an existing database is refused (it would merge,
    // not copy).
    match mem.persist_to(&path, 8) {
        Err(TmqlError::Model(ModelError::Io(msg))) => {
            assert!(msg.contains("already exists"), "{msg}")
        }
        other => panic!("expected refusal on existing target, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}
