//! Whole-pipeline differential tests: random generator configurations ×
//! the full Table 2 query corpus × every strategy × every join algorithm,
//! all compared against nested-loop semantics through the public API.

use proptest::prelude::*;
use tmql::{Database, JoinAlgo, QueryOptions, UnnestStrategy};
use tmql_workload::gen::{gen_xy, gen_xyz, GenConfig, SkewKind};
use tmql_workload::queries::{self, table2_templates};

fn correct_strategies() -> [UnnestStrategy; 5] {
    [
        UnnestStrategy::Optimal,
        UnnestStrategy::NestJoin,
        UnnestStrategy::GanskiWong,
        UnnestStrategy::Muralikrishna,
        UnnestStrategy::FlattenSemiAnti,
    ]
}

#[test]
fn corpus_under_all_join_algorithms() {
    let cfg = GenConfig {
        outer: 24,
        inner: 36,
        dangling_fraction: 0.3,
        ..GenConfig::default()
    };
    let db = Database::from_catalog(gen_xy(&cfg));
    for (name, src) in table2_templates() {
        let oracle = db
            .query_with(
                &src,
                QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
            )
            .unwrap();
        for strat in correct_strategies() {
            for algo in [
                JoinAlgo::NestedLoop,
                JoinAlgo::Hash,
                JoinAlgo::SortMerge,
                JoinAlgo::Auto,
            ] {
                let r = db
                    .query_with(
                        &src,
                        QueryOptions::default().strategy(strat).join_algo(algo),
                    )
                    .unwrap();
                assert_eq!(
                    r.values,
                    oracle.values,
                    "`{name}` / {} / {algo:?}",
                    strat.name()
                );
            }
        }
    }
}

#[test]
fn multilevel_corpus_under_skew() {
    for skew in [SkewKind::Uniform, SkewKind::Zipf(1.1)] {
        let cfg = GenConfig {
            outer: 20,
            inner: 25,
            dangling_fraction: 0.2,
            skew,
            ..GenConfig::default()
        };
        let db = Database::from_catalog(gen_xyz(&cfg));
        for src in [queries::SECTION8, queries::SECTION8_FLAT] {
            let oracle = db
                .query_with(
                    src,
                    QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
                )
                .unwrap();
            for strat in correct_strategies() {
                let r = db
                    .query_with(src, QueryOptions::default().strategy(strat))
                    .unwrap();
                assert_eq!(r.values, oracle.values, "{skew:?} {}", strat.name());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random generator configs: the full pipeline agrees with the oracle
    /// on membership, non-membership, count-compare and ⊆ — the four
    /// archetypes (semijoin, antijoin, aggregate grouping, set grouping).
    #[test]
    fn archetypes_on_random_configs(
        outer in 1usize..40,
        inner in 0usize..50,
        dangling in 0.0f64..1.0,
        max_set in 0usize..5,
        seed in 0u64..1000,
    ) {
        let cfg = GenConfig { outer, inner, dangling_fraction: dangling, max_set, seed,
                              skew: SkewKind::Uniform };
        let db = Database::from_catalog(gen_xy(&cfg));
        let archetypes = [
            queries::MEMBERSHIP.to_string(),
            queries::NON_MEMBERSHIP.to_string(),
            queries::where_query("x.n = COUNT({Z})"),
            queries::SUBSETEQ_BUG.to_string(),
        ];
        for src in &archetypes {
            let oracle = db
                .query_with(src, QueryOptions::default().strategy(UnnestStrategy::NestedLoop))
                .unwrap();
            for strat in correct_strategies() {
                let r = db.query_with(src, QueryOptions::default().strategy(strat)).unwrap();
                prop_assert_eq!(&r.values, &oracle.values, "{}", strat.name());
            }
        }
    }

    /// The membership archetype flattens to a semijoin for every
    /// configuration — and never contains grouping operators.
    #[test]
    fn membership_always_flattens(seed in 0u64..500) {
        let cfg = GenConfig { outer: 10, inner: 10, seed, ..GenConfig::default() };
        let db = Database::from_catalog(gen_xy(&cfg));
        let (_, plan) = db
            .plan_with(queries::MEMBERSHIP, QueryOptions::default())
            .unwrap();
        let is_semi = plan.any_node(&mut |n| matches!(n, tmql::Plan::SemiJoin { .. }));
        prop_assert!(!plan.has_apply());
        prop_assert!(!plan.has_nest_join());
        prop_assert!(is_semi);
    }
}
