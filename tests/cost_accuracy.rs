//! Cost-model accuracy smoke (wired into CI): run the B7 ablation
//! queries, compare the estimator's per-operator row predictions against
//! the executed profile's actual rows, and fail when the worst q-error
//! exceeds a generous pinned bound. Catches estimator regressions (a
//! broken selectivity or fan-out stat shows up as a 100×+ q-error long
//! before it misranks every plan).
//!
//! `TMQL_BENCH_QUICK=1` (the CI bench smoke env) shrinks the data so the
//! whole check runs in milliseconds.

use tmql::{Database, QueryOptions};
use tmql_workload::gen::{gen_rs, gen_xy, GenConfig};
use tmql_workload::queries::{where_query, COUNT_BUG, UNNEST_COLLAPSE};

/// Generous upper bound on the worst per-operator q-error across the b7
/// queries. Exact estimates give 1.0; the current model stays around
/// 10–15 (group-size and residual-selectivity guesses); triple digits
/// means the estimator broke.
const MAX_QERROR: f64 = 64.0;

fn size() -> usize {
    let quick = std::env::var("TMQL_BENCH_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if quick {
        256
    } else {
        1024
    }
}

fn check(tag: &str, db: &Database, src: &str) {
    let r = db
        .query_with(src, QueryOptions::default())
        .expect("query runs");
    let q = r.max_qerror();
    assert!(
        q.is_finite() && q <= MAX_QERROR,
        "{tag}: max q-error {q:.1} exceeds {MAX_QERROR} — estimator regression?\n{}",
        r.op_profile
    );
}

#[test]
fn b7_rules_query_estimates_within_bound() {
    let db = Database::from_catalog(gen_xy(&GenConfig::sized(size())));
    check("b7-rules", &db, &where_query("x.n < 4 AND x.n IN {Z}"));
}

#[test]
fn b7_collapse_query_estimates_within_bound() {
    let db = Database::from_catalog(gen_xy(&GenConfig::sized(size())));
    check("b7-collapse", &db, UNNEST_COLLAPSE);
}

#[test]
fn b7_survey_query_estimates_within_bound() {
    let cfg = GenConfig {
        outer: size(),
        inner: size(),
        dangling_fraction: 0.25,
        ..GenConfig::default()
    };
    let db = Database::from_catalog(gen_rs(&cfg));
    check("b7-survey", &db, COUNT_BUG);
    // The cost-model ablation's high-fanout variant.
    let cfg = GenConfig {
        outer: size() / 4,
        inner: size(),
        ..cfg
    };
    let db = Database::from_catalog(gen_rs(&cfg));
    check("b7-costmodel", &db, COUNT_BUG);
}
