//! Cost-model accuracy smoke (wired into CI): run the B7 ablation
//! queries, compare the estimator's per-operator row predictions against
//! the executed profile's actual rows, and fail when the worst q-error
//! exceeds a generous pinned bound. Catches estimator regressions (a
//! broken selectivity or fan-out stat shows up as a 100×+ q-error long
//! before it misranks every plan).
//!
//! `TMQL_BENCH_QUICK=1` (the CI bench smoke env) shrinks the data so the
//! whole check runs in milliseconds.

use tmql::{Database, QueryOptions};
use tmql_workload::gen::{gen_rs, gen_xy, GenConfig};
use tmql_workload::queries::{where_query, COUNT_BUG, UNNEST_COLLAPSE};

/// Generous upper bound on the worst per-operator q-error across the b7
/// queries. Exact estimates give 1.0; the current model stays around
/// 10–15 (group-size and residual-selectivity guesses); triple digits
/// means the estimator broke.
const MAX_QERROR: f64 = 64.0;

fn size() -> usize {
    let quick = std::env::var("TMQL_BENCH_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if quick {
        256
    } else {
        1024
    }
}

fn check(tag: &str, db: &Database, src: &str) {
    let r = db
        .query_with(src, QueryOptions::default())
        .expect("query runs");
    let q = r.max_qerror();
    assert!(
        q.is_finite() && q <= MAX_QERROR,
        "{tag}: max q-error {q:.1} exceeds {MAX_QERROR} — estimator regression?\n{}",
        r.op_profile
    );
}

#[test]
fn b7_rules_query_estimates_within_bound() {
    let db = Database::from_catalog(gen_xy(&GenConfig::sized(size())));
    check("b7-rules", &db, &where_query("x.n < 4 AND x.n IN {Z}"));
}

#[test]
fn b7_collapse_query_estimates_within_bound() {
    let db = Database::from_catalog(gen_xy(&GenConfig::sized(size())));
    check("b7-collapse", &db, UNNEST_COLLAPSE);
}

/// Acceptance: the estimator's predicted scan→probe crossover on a
/// selectivity ladder lands within 4× of the measured one. Each ladder
/// step builds a table whose indexed column has `d` distinct values
/// (equality selectivity 1/d), forces both access paths, and compares
/// their measured `total_work`; the estimator's pick per step comes from
/// the same `select_access_paths` seam the planner uses. The two smallest
/// `d` where the probe first wins must agree within 4×.
#[test]
fn index_crossover_estimate_within_4x_of_measured() {
    use tmql_algebra::{Env, ScalarExpr as E};
    use tmql_exec::{execute, Estimator, ExecContext, PhysPlan};
    use tmql_storage::{table::int_table, Catalog};

    let n = size() as i64 * 4;
    let ladder = [1i64, 2, 4, 8, 16, 64, 256];
    let mut predicted: Option<i64> = None;
    let mut measured: Option<i64> = None;
    for &d in &ladder {
        let rows: Vec<Vec<i64>> = (0..n).map(|i| vec![i, i % d]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        let mut cat = Catalog::new();
        cat.register(int_table("X", &["a", "b"], &refs)).unwrap();
        cat.create_index("X", "b").unwrap();
        let pred = E::eq(E::path("x", &["b"]), E::lit(0i64));

        let est = Estimator::new(&cat);
        let (_, probe_work, scan_work) = est
            .select_access_paths("X", "x", &pred)
            .expect("an index on X.b exists");
        if predicted.is_none() && probe_work < scan_work {
            predicted = Some(d);
        }

        let scan = PhysPlan::Filter {
            input: Box::new(PhysPlan::ScanTable {
                table: "X".into(),
                var: "x".into(),
            }),
            pred: pred.clone(),
        };
        let probe = PhysPlan::IndexScan {
            table: "X".into(),
            var: "x".into(),
            attr: "b".into(),
            eq: Some(E::lit(0i64)),
            lo: None,
            hi: None,
            pred,
        };
        let mut sctx = ExecContext::new(&cat);
        execute(&scan, &mut sctx, &Env::new()).unwrap();
        let mut ictx = ExecContext::new(&cat);
        execute(&probe, &mut ictx, &Env::new()).unwrap();
        if measured.is_none() && ictx.metrics.total_work() < sctx.metrics.total_work() {
            measured = Some(d);
        }
    }
    let predicted = predicted.expect("the estimator never picked the probe");
    let measured = measured.expect("the measured probe never won");
    let ratio = (predicted.max(measured) as f64) / (predicted.min(measured) as f64);
    assert!(
        ratio <= 4.0,
        "crossover mismatch: estimator flips at d={predicted}, measured flips at d={measured} ({ratio:.1}x apart)"
    );
}

#[test]
fn b7_survey_query_estimates_within_bound() {
    let cfg = GenConfig {
        outer: size(),
        inner: size(),
        dangling_fraction: 0.25,
        ..GenConfig::default()
    };
    let db = Database::from_catalog(gen_rs(&cfg));
    check("b7-survey", &db, COUNT_BUG);
    // The cost-model ablation's high-fanout variant.
    let cfg = GenConfig {
        outer: size() / 4,
        inner: size(),
        ..cfg
    };
    let db = Database::from_catalog(gen_rs(&cfg));
    check("b7-costmodel", &db, COUNT_BUG);
}
