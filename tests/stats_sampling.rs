//! Differential test for sampled statistics (the ROADMAP "sampling for
//! large tables" item): above [`STATS_SAMPLE_THRESHOLD`] rows,
//! registration builds statistics from a reservoir sample instead of an
//! exact pass. Over the bench generators, every estimate the cost model
//! consumes — distinct counts, histogram selectivities, set fan-outs,
//! null/empty fractions — must stay within a small q-error of the exact
//! pass.

use tmql_storage::stats::{StatsBuilder, STATS_SAMPLE_THRESHOLD};
use tmql_storage::{Table, TableStats};
use tmql_workload::gen::{gen_rs, gen_xy, GenConfig};

/// q-error bound for sampled scalar estimates (distinct counts, set
/// fan-outs). 2048 uniform samples of these generator distributions land
/// comfortably inside it; a broken estimator lands far outside.
const MAX_Q: f64 = 2.0;

fn qerr(est: f64, act: f64) -> f64 {
    let (e, a) = (est.max(1e-9), act.max(1e-9));
    (e / a).max(a / e)
}

fn exact_stats(t: &Table) -> TableStats {
    let mut b = StatsBuilder::exact(t.columns().iter().map(|(n, _)| n.as_str()));
    for row in t.rows() {
        b.observe(row);
    }
    b.finish()
}

/// Compare sampled (auto, via `TableStats::compute` past the threshold)
/// against exact statistics for one table.
fn check_table(tag: &str, t: &Table) {
    assert!(
        t.len() > STATS_SAMPLE_THRESHOLD,
        "{tag}: fixture must exceed the sampling threshold ({} rows)",
        t.len()
    );
    let sampled = TableStats::compute(t);
    let exact = exact_stats(t);
    assert_eq!(
        sampled.cardinality, exact.cardinality,
        "{tag}: row counts are exact"
    );
    for (col, e) in &exact.columns {
        let s = &sampled.columns[col];
        // Extremes are tracked exactly in both modes.
        assert_eq!(s.min, e.min, "{tag}.{col}: min");
        assert_eq!(s.max, e.max, "{tag}.{col}: max");
        // Distinct counts: the 1/NDV selectivities the estimator uses.
        let q = qerr(s.distinct as f64, e.distinct as f64);
        assert!(
            q <= MAX_Q,
            "{tag}.{col}: distinct q-error {q:.2} (sampled {} vs exact {})",
            s.distinct,
            e.distinct
        );
        // Fractions feed NULL/empty-set selectivities directly.
        assert!(
            (s.null_fraction - e.null_fraction).abs() < 0.05,
            "{tag}.{col}: nulls"
        );
        assert!(
            (s.set_valued_fraction - e.set_valued_fraction).abs() < 0.05,
            "{tag}.{col}: set fraction"
        );
        assert!(
            (s.empty_set_fraction - e.empty_set_fraction).abs() < 0.05,
            "{tag}.{col}: empty-set fraction"
        );
        // Set fan-out drives ScanExpr/Unnest cardinalities.
        if e.avg_set_card > 0.0 {
            let q = qerr(s.avg_set_card, e.avg_set_card);
            assert!(q <= MAX_Q, "{tag}.{col}: fan-out q-error {q:.2}");
        }
        // Histogram selectivities: probe the quartiles of the exact range
        // and demand the sampled CDF track the exact one.
        if let Some(eh) = &e.histogram {
            assert!(
                s.histogram.is_some(),
                "{tag}.{col}: sampled pass lost the histogram"
            );
            for k in 1..4 {
                let probe = eh.lo + (eh.hi - eh.lo) * k as f64 / 4.0;
                let se = s.fraction_lt(probe).expect("sampled histogram");
                let ee = e.fraction_lt(probe).expect("exact histogram");
                assert!(
                    (se - ee).abs() < 0.08,
                    "{tag}.{col}: P[< {probe:.1}] sampled {se:.3} vs exact {ee:.3}"
                );
            }
        }
    }
}

#[test]
fn sampled_stats_track_exact_on_gen_xy() {
    let cat = gen_xy(&GenConfig::sized(STATS_SAMPLE_THRESHOLD * 2 + 500));
    for name in ["X", "Y"] {
        let t = cat.table(name).unwrap();
        if t.len() > STATS_SAMPLE_THRESHOLD {
            check_table(&format!("xy.{name}"), t);
        }
    }
}

#[test]
fn sampled_stats_track_exact_on_gen_rs() {
    let cfg = GenConfig {
        outer: STATS_SAMPLE_THRESHOLD * 2,
        inner: STATS_SAMPLE_THRESHOLD * 2,
        dangling_fraction: 0.25,
        ..GenConfig::default()
    };
    let cat = gen_rs(&cfg);
    for name in ["R", "S"] {
        let t = cat.table(name).unwrap();
        if t.len() > STATS_SAMPLE_THRESHOLD {
            check_table(&format!("rs.{name}"), t);
        }
    }
}

#[test]
fn registration_of_large_tables_uses_the_sampled_pass() {
    // The catalog path itself (register → stats) must go through the
    // sampled builder: identical cardinality, bounded q-error, and the
    // estimator keeps working end to end.
    use tmql::Database;
    let n = STATS_SAMPLE_THRESHOLD * 2;
    let db = Database::from_catalog(gen_xy(&GenConfig::sized(n)));
    let st = db.catalog().stats("X").expect("stats registered");
    assert_eq!(st.cardinality, n);
    let r = db
        .query("SELECT x.n FROM X x WHERE x.b < 100")
        .expect("query over sampled-stats table runs");
    assert!(r.max_qerror().is_finite());
}
