//! Experiment E2: the SUBSETEQ bug (Section 4) — the paper's
//! complex-object generalization of the COUNT bug.
//!
//! `SELECT x FROM X x WHERE x.a ⊆ (SELECT y.a FROM Y y WHERE x.b = y.b)`
//!
//! "X-tuples for which x.a = ∅ that are not matched by any t-tuple on the
//! condition x.b = t.b are lost" under the Kim-style transformation.

use tmql::{Database, QueryOptions, Table, UnnestStrategy, Value};
use tmql_model::{Record, Ty};
use tmql_storage::{table::int_table, Catalog};
use tmql_workload::gen::{gen_xy, GenConfig};
use tmql_workload::queries::SUBSETEQ_BUG;

/// The Section 4 scenario, minimal: one dangling X row with x.a = ∅.
fn fixture() -> Catalog {
    let mut cat = Catalog::new();
    let mut x = Table::new(
        "X",
        vec![
            ("a".into(), Ty::Set(Box::new(Ty::Int))),
            ("b".into(), Ty::Int),
            ("n".into(), Ty::Int),
        ],
    );
    let rows: Vec<(Vec<i64>, i64, i64)> = vec![
        (vec![10], 1, 0),     // matched, {10} ⊆ {10, 11} ✓
        (vec![10, 99], 1, 1), // matched, 99 ∉ {10, 11} ✗
        (vec![], 7, 2),       // DANGLING with x.a = ∅: ∅ ⊆ ∅ ✓ — the bug row
        (vec![10], 7, 3),     // dangling with x.a ≠ ∅: {10} ⊆ ∅ ✗
    ];
    for (a, b, n) in rows {
        x.insert(
            Record::new([
                ("a".to_string(), Value::set(a.into_iter().map(Value::Int))),
                ("b".to_string(), Value::Int(b)),
                ("n".to_string(), Value::Int(n)),
            ])
            .unwrap(),
        )
        .unwrap();
    }
    cat.register(x).unwrap();
    cat.register(int_table("Y", &["b", "a"], &[&[1, 10], &[1, 11]]))
        .unwrap();
    cat
}

#[test]
fn subseteq_bug_demonstrated_and_fixed() {
    let db = Database::from_catalog(fixture());
    let oracle = db
        .query_with(
            SUBSETEQ_BUG,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    assert_eq!(oracle.len(), 2, "rows n=0 and n=2 qualify");

    let kim = db
        .query_with(
            SUBSETEQ_BUG,
            QueryOptions::default().strategy(UnnestStrategy::Kim),
        )
        .unwrap();
    assert_eq!(
        kim.len(),
        1,
        "Kim loses the dangling ∅-row — the SUBSETEQ bug"
    );

    for strat in [
        UnnestStrategy::GanskiWong,
        UnnestStrategy::Muralikrishna,
        UnnestStrategy::NestJoin,
        UnnestStrategy::Optimal,
    ] {
        let got = db
            .query_with(SUBSETEQ_BUG, QueryOptions::default().strategy(strat))
            .unwrap();
        assert_eq!(got.values, oracle.values, "{}", strat.name());
    }
}

#[test]
fn kim_plan_uses_nest_then_join_as_in_section4() {
    // The paper's Section 4 shows the transformation: T = ν(Y) grouped by
    // b, then X ⋈ T on x.b = t.b ∧ x.a ⊆ t.as.
    let db = Database::from_catalog(fixture());
    let (_, kim) = db
        .plan_with(
            SUBSETEQ_BUG,
            QueryOptions::default().strategy(UnnestStrategy::Kim),
        )
        .unwrap();
    assert!(
        kim.any_node(&mut |n| matches!(n, tmql::Plan::Nest { star: false, .. })),
        "{kim}"
    );
    assert!(
        kim.any_node(&mut |n| matches!(n, tmql::Plan::Join { .. })),
        "{kim}"
    );
    assert!(!kim.has_apply());
}

#[test]
fn optimal_uses_nest_join_for_subseteq() {
    // ⊆ requires grouping (Table 2), so Optimal must pick Δ, not ⋉.
    let db = Database::from_catalog(fixture());
    let (_, plan) = db
        .plan_with(
            SUBSETEQ_BUG,
            QueryOptions::default().strategy(UnnestStrategy::Optimal),
        )
        .unwrap();
    assert!(plan.has_nest_join(), "{plan}");
    assert!(!plan.any_node(&mut |n| matches!(n, tmql::Plan::SemiJoin { .. })));
}

#[test]
fn generated_sweep_counts_lost_rows() {
    // On generated data, Kim's deficit equals exactly the number of
    // dangling rows with x.a = ∅ (∅ ⊆ ∅ holds) — quantifying the bug.
    let cfg = GenConfig {
        outer: 80,
        inner: 60,
        dangling_fraction: 0.4,
        ..GenConfig::default()
    };
    let db = Database::from_catalog(gen_xy(&cfg));
    let oracle = db
        .query_with(
            SUBSETEQ_BUG,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    let kim = db
        .query_with(
            SUBSETEQ_BUG,
            QueryOptions::default().strategy(UnnestStrategy::Kim),
        )
        .unwrap();

    // Count dangling ∅-rows directly from the data.
    let x = db.catalog().table("X").unwrap();
    let y = db.catalog().table("Y").unwrap();
    let matched_keys: std::collections::BTreeSet<&Value> =
        y.rows().map(|r| r.get("b").unwrap()).collect();
    let lost = x
        .rows()
        .filter(|r| {
            r.get("a").unwrap() == &Value::empty_set()
                && !matched_keys.contains(r.get("b").unwrap())
        })
        .count();
    assert_eq!(oracle.len() - kim.len(), lost, "deficit = dangling ∅-rows");
    assert!(lost > 0, "the sweep must actually exercise the bug");
}
