//! Smoke test for the root `tmql` facade: the `Database::new` →
//! `register_table` → `query` → `explain` loop from `examples/quickstart.rs`
//! and the crate-level rustdoc, asserted end to end so the public entry
//! points cannot silently rot.

use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_storage::table::int_table;

fn sample_db() -> Database {
    let mut db = Database::new();
    db.register_table(int_table("X", &["a", "b"], &[&[1, 1], &[2, 9], &[3, 1]]))
        .expect("register X");
    db.register_table(int_table("Y", &["b", "c"], &[&[1, 10], &[1, 20]]))
        .expect("register Y");
    db
}

const ANTIJOIN_QUERY: &str =
    "SELECT x.a FROM X x WHERE COUNT((SELECT y.c FROM Y y WHERE x.b = y.b)) = 0";

#[test]
fn register_query_explain_round_trip() {
    let db = sample_db();

    // The dangling row (a = 2, b = 9) has no Y partners and must be the
    // only qualifying row — losing it would be the COUNT bug.
    let result = db.query(ANTIJOIN_QUERY).expect("query runs");
    assert_eq!(result.len(), 1);
    assert!(!result.is_empty());
    assert!(result.render().contains('2'), "row a = 2 must qualify");

    // Theorem 1 flattens the COUNT(..) = 0 predicate into an antijoin.
    let explain = db.explain(ANTIJOIN_QUERY).expect("explain runs");
    assert!(
        explain.contains("antijoin"),
        "expected an antijoin in the optimized plan, got:\n{explain}"
    );
}

#[test]
fn re_registering_a_table_errors_instead_of_clobbering() {
    let mut db = sample_db();
    let dup = int_table("X", &["a", "b"], &[&[7, 7]]);
    assert!(
        db.register_table(dup).is_err(),
        "re-registering extension X must not silently replace it"
    );
    // The original extension is untouched.
    assert_eq!(
        db.query("SELECT x.a FROM X x").expect("query runs").len(),
        3
    );
}

#[test]
fn every_strategy_agrees_on_the_antijoin_query() {
    let db = sample_db();
    let reference: Vec<String> = {
        let r = db.query(ANTIJOIN_QUERY).expect("default runs");
        r.values.iter().map(|v| v.to_string()).collect()
    };
    // Kim's strategy is deliberately bug-compatible (it loses dangling
    // tuples), so only the correct strategies are compared.
    for strat in [
        UnnestStrategy::NestedLoop,
        UnnestStrategy::GanskiWong,
        UnnestStrategy::NestJoin,
        UnnestStrategy::FlattenSemiAnti,
        UnnestStrategy::Optimal,
    ] {
        let opts = QueryOptions::default().strategy(strat);
        let r = db.query_with(ANTIJOIN_QUERY, opts).expect("strategy runs");
        let got: Vec<String> = r.values.iter().map(|v| v.to_string()).collect();
        assert_eq!(got, reference, "strategy {strat:?} diverged");
    }
}
