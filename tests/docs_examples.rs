//! Executes every fenced `tmql` snippet in `docs/strategies.md`, so the
//! documentation cannot rot: each block names a dataset and strategy,
//! must parse/typecheck/run, and its `expect-plan:` substrings must
//! appear in `EXPLAIN` output (`expect-rows:` pins the cardinality).

use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_workload::gen::{gen_rs, gen_xy, gen_xyz, GenConfig};
use tmql_workload::schemas;

/// One parsed snippet: directives plus the query text.
#[derive(Debug, Default)]
struct Snippet {
    line: usize,
    dataset: String,
    strategy: String,
    expect_plan: Vec<String>,
    expect_rows: Option<usize>,
    query: String,
}

/// Extract every ```tmql block with its `-- key: value` directives.
fn parse_snippets(md: &str) -> Vec<Snippet> {
    let mut out = Vec::new();
    let mut cur: Option<Snippet> = None;
    for (i, line) in md.lines().enumerate() {
        match cur.as_mut() {
            None => {
                if line.trim() == "```tmql" {
                    cur = Some(Snippet {
                        line: i + 1,
                        dataset: "company".into(),
                        strategy: "cost-based".into(),
                        ..Snippet::default()
                    });
                }
            }
            Some(s) => {
                if line.trim() == "```" {
                    out.push(cur.take().expect("open snippet"));
                } else if let Some(rest) = line.trim().strip_prefix("--") {
                    let rest = rest.trim();
                    if let Some((key, val)) = rest.split_once(':') {
                        let val = val.trim().to_string();
                        match key.trim() {
                            "dataset" => s.dataset = val,
                            "strategy" => s.strategy = val,
                            "expect-plan" => s.expect_plan.push(val),
                            "expect-rows" => {
                                s.expect_rows =
                                    Some(val.parse().expect("expect-rows takes an integer"))
                            }
                            other => panic!("line {}: unknown directive `{other}`", i + 1),
                        }
                    }
                } else {
                    if !s.query.is_empty() {
                        s.query.push(' ');
                    }
                    s.query.push_str(line.trim());
                }
            }
        }
    }
    assert!(cur.is_none(), "unterminated ```tmql block");
    out
}

fn load_dataset(name: &str) -> Database {
    let cfg = GenConfig::sized(64);
    let cat = match name {
        "table1" => schemas::table1_catalog(),
        "countbug" => schemas::count_bug_catalog(),
        "company" => schemas::company_catalog(),
        "section8" => schemas::section8_catalog(),
        "rs" => gen_rs(&cfg),
        "xy" => gen_xy(&cfg),
        "xyz" => gen_xyz(&cfg),
        other => panic!("snippet names unknown dataset `{other}`"),
    };
    Database::from_catalog(cat)
}

fn parse_strategy(name: &str) -> UnnestStrategy {
    UnnestStrategy::ALL
        .into_iter()
        .find(|s| s.name() == name)
        .unwrap_or_else(|| panic!("snippet names unknown strategy `{name}`"))
}

#[test]
fn every_strategies_md_snippet_runs_and_matches_its_plan() {
    let md = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/strategies.md"))
        .expect("docs/strategies.md exists");
    let snippets = parse_snippets(&md);
    assert!(
        snippets.len() >= UnnestStrategy::ALL.len(),
        "strategies.md must exercise at least one snippet per strategy, found {}",
        snippets.len()
    );

    let mut covered = std::collections::BTreeSet::new();
    for s in &snippets {
        let db = load_dataset(&s.dataset);
        let strategy = parse_strategy(&s.strategy);
        covered.insert(strategy.name());
        let opts = QueryOptions::default().strategy(strategy);

        let explain = db
            .explain_with(&s.query, opts)
            .unwrap_or_else(|e| panic!("line {}: snippet does not plan: {e}\n{}", s.line, s.query));
        for want in &s.expect_plan {
            assert!(
                explain.contains(want.as_str()),
                "line {}: EXPLAIN lacks `{want}`:\n{explain}",
                s.line
            );
        }

        let result = db
            .query_with(&s.query, opts)
            .unwrap_or_else(|e| panic!("line {}: snippet does not run: {e}\n{}", s.line, s.query));
        if let Some(n) = s.expect_rows {
            assert_eq!(result.len(), n, "line {}: row count", s.line);
        }
    }

    // The file documents every variant; make sure none lost its snippet.
    for strat in UnnestStrategy::ALL {
        assert!(
            covered.contains(strat.name()),
            "strategies.md has no snippet for `{}`",
            strat.name()
        );
    }
}
