//! Facade-level streaming-executor checks: the b1 flatten workload must
//! actually stream (peak resident rows strictly below the total
//! intermediate row count), and batch size must never change results.

use tmql::{Database, JoinAlgo, QueryOptions, UnnestStrategy};
use tmql_workload::gen::{gen_xy, GenConfig};
use tmql_workload::queries::MEMBERSHIP;

fn b1_db(n: usize) -> Database {
    Database::from_catalog(gen_xy(&GenConfig::sized(n)))
}

/// The tentpole acceptance criterion: for the b1 flatten query (hash
/// semijoin) at batch_size=1024, `peak_resident_rows` is strictly below
/// the total intermediate row count (`rows_emitted` sums every operator's
/// output, scans included). A materializing executor would hold all of it
/// at once; the streaming one holds only the hash build side plus dedup
/// state plus one batch.
#[test]
fn b1_flatten_streams_below_total_intermediate_rows() {
    let db = b1_db(4096);
    let opts = QueryOptions::default()
        .strategy(UnnestStrategy::Optimal)
        .join_algo(JoinAlgo::Hash)
        .batch_size(1024);
    let r = db.query_with(MEMBERSHIP, opts).expect("b1 runs");
    assert!(!r.is_empty(), "workload produces rows");
    assert!(
        r.metrics.peak_resident_rows < r.metrics.rows_emitted,
        "streaming must not hold every intermediate at once: peak={} total={}",
        r.metrics.peak_resident_rows,
        r.metrics.rows_emitted
    );
    assert!(
        r.metrics.batches_emitted > 1,
        "a 4096-row workload spans multiple batches"
    );
}

/// Results and scan work are batch-size invariant for the paper's
/// membership workload under both the Apply baseline and the flattened
/// strategies.
#[test]
fn b1_results_are_batch_size_invariant() {
    let db = b1_db(256);
    for strategy in [UnnestStrategy::NestedLoop, UnnestStrategy::Optimal] {
        let base = db
            .query_with(MEMBERSHIP, QueryOptions::default().strategy(strategy))
            .expect("runs");
        for bs in [1, 7, 256, 100_000] {
            let r = db
                .query_with(
                    MEMBERSHIP,
                    QueryOptions::default().strategy(strategy).batch_size(bs),
                )
                .expect("runs");
            assert_eq!(r.values, base.values, "{} batch {}", strategy.name(), bs);
            assert_eq!(
                r.metrics.rows_scanned,
                base.metrics.rows_scanned,
                "{} batch {}",
                strategy.name(),
                bs
            );
            assert_eq!(
                r.metrics.subquery_invocations,
                base.metrics.subquery_invocations,
                "{} batch {}",
                strategy.name(),
                bs
            );
        }
    }
}

/// The Apply baseline keeps its per-outer-row invocation accounting under
/// streaming: one subquery invocation per outer row, regardless of how the
/// outer side is batched.
#[test]
fn apply_counts_invocations_per_outer_row() {
    let db = b1_db(128);
    for bs in [1, 32, 1024] {
        let r = db
            .query_with(
                MEMBERSHIP,
                QueryOptions::default()
                    .strategy(UnnestStrategy::NestedLoop)
                    .batch_size(bs),
            )
            .expect("runs");
        assert_eq!(r.metrics.subquery_invocations, 128, "batch {bs}");
    }
}
