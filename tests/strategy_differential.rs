//! Differential testing of `UnnestStrategy::CostBased` over the workload
//! schemas: whatever the cost model picks per block, the result **set**
//! must be identical to every correct strategy's result — strategy choice
//! must never change answers, only cost. (Kim is excluded: it is
//! deliberately bug-compatible and loses dangling tuples.)

use proptest::prelude::*;
use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_workload::gen::{gen_rs, gen_xy, GenConfig};
use tmql_workload::queries::{where_query, COUNT_BUG, MEMBERSHIP, NON_MEMBERSHIP, SUBSETEQ_BUG};

fn arb_config() -> impl Strategy<Value = GenConfig> {
    (1usize..32, 1usize..48, 0u32..10, 0usize..4, any::<u64>()).prop_map(
        |(outer, inner, dangling, max_set, seed)| GenConfig {
            outer,
            inner,
            dangling_fraction: dangling as f64 / 10.0,
            max_set,
            seed,
            ..GenConfig::default()
        },
    )
}

/// Run `src` under every strategy and assert the result values agree with
/// the nested-loop ground truth — in particular for `CostBased`, whose
/// block choices depend on the generated data's statistics.
fn assert_all_strategies_agree(db: &Database, src: &str) {
    let oracle = db
        .query_with(
            src,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .expect("nested-loop oracle runs");
    for strat in UnnestStrategy::ALL {
        if strat.is_bug_compatible() {
            continue;
        }
        let got = db
            .query_with(src, QueryOptions::default().strategy(strat))
            .unwrap_or_else(|e| panic!("{} fails: {e}", strat.name()));
        assert_eq!(
            got.values,
            oracle.values,
            "strategy {} changed the result on {src}",
            strat.name()
        );
    }
}

/// Run every query on the index-free database (CostBased defaults) and on
/// the indexed one under every thread count × memory budget combination:
/// indexes may change plans and cost, never the result set.
fn assert_indexes_change_nothing(plain: &Database, indexed: &Database, queries: &[String]) {
    for q in queries {
        let want = plain
            .query(q)
            .unwrap_or_else(|e| panic!("plain {q} fails: {e}"))
            .values;
        for threads in [1usize, 2] {
            for budget in [None, Some(8usize)] {
                let mut opts = QueryOptions::default().threads(threads);
                if let Some(b) = budget {
                    opts = opts.memory_budget(b);
                }
                let got = indexed
                    .query_with(q, opts)
                    .unwrap_or_else(|e| panic!("indexed {q} fails: {e}"));
                assert_eq!(
                    got.values, want,
                    "indexes changed the answer on {q} (threads={threads}, budget={budget:?})"
                );
            }
        }
    }
}

/// The Apply-cache transparency property: with the per-row baseline
/// (`apply_cache(false)`, forced nested loop) as oracle, the memoizing
/// executor must produce the same value set under every thread count ×
/// memory budget combination — cache hits and hoisted inner plans change
/// counters and cost, never answers — and so must every unnest strategy
/// running with the cache on.
fn assert_apply_cache_is_transparent(db: &Database, src: &str) {
    let nl = QueryOptions::default().strategy(UnnestStrategy::NestedLoop);
    let oracle = db
        .query_with(src, nl.apply_cache(false).threads(1))
        .expect("uncached nested-loop oracle runs");
    for threads in [1usize, 4] {
        for budget in [None, Some(8usize)] {
            let mut opts = nl.threads(threads);
            if let Some(b) = budget {
                opts = opts.memory_budget(b);
            }
            let got = db
                .query_with(src, opts)
                .unwrap_or_else(|e| panic!("cached Apply fails: {e}"));
            assert_eq!(
                got.values, oracle.values,
                "apply cache changed the result on {src} (threads={threads}, budget={budget:?})"
            );
            assert!(
                got.metrics.apply_invocations <= oracle.metrics.subquery_invocations,
                "memoization must never run the inner plan more often than per-row"
            );
        }
    }
    assert_all_strategies_agree(db, src);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cost_based_matches_all_strategies_on_rs(cfg in arb_config()) {
        let db = Database::from_catalog(gen_rs(&cfg));
        assert_apply_cache_is_transparent(&db, COUNT_BUG);
        assert_apply_cache_is_transparent(&db, "SELECT x.a FROM R x WHERE x.b IN (SELECT y.d FROM S y WHERE x.c = y.c)");
    }

    #[test]
    fn cost_based_matches_all_strategies_on_xy(cfg in arb_config()) {
        let db = Database::from_catalog(gen_xy(&cfg));
        for src in [
            MEMBERSHIP.to_string(),
            NON_MEMBERSHIP.to_string(),
            SUBSETEQ_BUG.to_string(),
            where_query("COUNT({Z}) = 0"),
            where_query("x.n = COUNT({Z})"),
            where_query("x.a INTERSECTS {Z}"),
        ] {
            assert_apply_cache_is_transparent(&db, &src);
        }
    }

    /// The index-consistency property: the same generator seed builds two
    /// identical databases, one with secondary indexes on the correlated
    /// inner columns. Whatever access paths CostBased then picks, the
    /// result sets never differ — under serial and 2-thread execution,
    /// with and without a spilling memory budget.
    #[test]
    fn cost_based_with_indexes_matches_without(cfg in arb_config()) {
        let plain = Database::from_catalog(gen_rs(&cfg));
        let mut indexed = Database::from_catalog(gen_rs(&cfg));
        indexed.create_index("S", "c").unwrap();
        indexed.create_index("R", "c").unwrap();
        assert_indexes_change_nothing(&plain, &indexed, &[
            COUNT_BUG.to_string(),
            "SELECT x.a FROM R x WHERE x.b IN (SELECT y.d FROM S y WHERE x.c = y.c)".to_string(),
        ]);

        let plain = Database::from_catalog(gen_xy(&cfg));
        let mut indexed = Database::from_catalog(gen_xy(&cfg));
        indexed.create_index("Y", "b").unwrap();
        assert_indexes_change_nothing(&plain, &indexed, &[
            MEMBERSHIP.to_string(),
            NON_MEMBERSHIP.to_string(),
            where_query("COUNT({Z}) = 0"),
        ]);
    }
}
