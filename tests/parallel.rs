//! Differential testing of morsel-driven parallel execution: for any
//! generated dataset and any thread count, a query's result **set** must
//! be identical to the serial (`threads = 1`) run — both in-memory and
//! under a tight `memory_budget_rows` that forces grace-partition
//! spilling (the partition-per-worker parallel path).
//!
//! The engine's ordering contract (see `docs/architecture.md`) says
//! results are a multiset unless an explicit order is requested; TM
//! queries denote sets, so comparing the deduplicated `values` sets is
//! the full contract.

use proptest::prelude::*;
use tmql::{Database, QueryOptions};
use tmql_workload::gen::{gen_rs, gen_xy, GenConfig};
use tmql_workload::queries::{where_query, COUNT_BUG, MEMBERSHIP, NON_MEMBERSHIP};

fn arb_config() -> impl Strategy<Value = GenConfig> {
    (1usize..32, 1usize..48, 0u32..10, 0usize..4, any::<u64>()).prop_map(
        |(outer, inner, dangling, max_set, seed)| GenConfig {
            outer,
            inner,
            dangling_fraction: dangling as f64 / 10.0,
            max_set,
            seed,
            ..GenConfig::default()
        },
    )
}

/// Run `src` serially, then at 2 and 8 worker threads, with and without a
/// spill-forcing memory budget; every run must produce the same value set.
fn assert_parallel_matches_serial(db: &Database, src: &str) {
    for budget in [None, Some(8usize)] {
        let mut base = QueryOptions::default().threads(1);
        if let Some(rows) = budget {
            base = base.memory_budget(rows);
        }
        let serial = db.query_with(src, base).expect("serial run succeeds");
        for threads in [2usize, 8] {
            let got = db
                .query_with(src, base.threads(threads))
                .unwrap_or_else(|e| panic!("threads={threads} budget={budget:?} fails: {e}"));
            assert_eq!(
                got.values, serial.values,
                "threads={threads} budget={budget:?} changed the result on {src}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_matches_serial_on_rs(cfg in arb_config()) {
        let db = Database::from_catalog(gen_rs(&cfg));
        assert_parallel_matches_serial(&db, COUNT_BUG);
        assert_parallel_matches_serial(
            &db,
            "SELECT x.a FROM R x WHERE x.b IN (SELECT y.d FROM S y WHERE x.c = y.c)",
        );
    }

    #[test]
    fn parallel_matches_serial_on_xy(cfg in arb_config()) {
        let db = Database::from_catalog(gen_xy(&cfg));
        for src in [
            MEMBERSHIP.to_string(),
            NON_MEMBERSHIP.to_string(),
            where_query("x.n = COUNT({Z})"),
            where_query("x.a INTERSECTS {Z}"),
        ] {
            assert_parallel_matches_serial(&db, &src);
        }
    }
}

/// A fixed larger dataset under a tight budget: the grace-hash join and
/// breaker partitions all take the parallel wave path, and the spill
/// metrics prove the budgeted runs really spilled.
#[test]
fn parallel_spilling_run_matches_serial_and_spills() {
    let db = Database::from_catalog(gen_xy(&GenConfig::sized(512)));
    let src = "SELECT x.n FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)";
    let serial = db
        .query_with(src, QueryOptions::default().threads(1).memory_budget(32))
        .expect("serial spilling run");
    assert!(serial.metrics.rows_spilled > 0, "budget must force a spill");
    for threads in [2usize, 4, 8] {
        let got = db
            .query_with(
                src,
                QueryOptions::default().threads(threads).memory_budget(32),
            )
            .expect("parallel spilling run");
        assert_eq!(got.values, serial.values, "threads={threads}");
        assert!(
            got.metrics.rows_spilled > 0,
            "parallel run must still respect the budget (threads={threads})"
        );
    }
}

/// Scan waves hold about one batch in flight regardless of worker count:
/// morsels are `⌈batch_size / threads⌉` rows each, so `peak_resident_rows`
/// must stay within one batch (plus per-worker rounding) of the serial
/// run's peak instead of growing as `threads × batch_size`.
#[test]
fn scan_waves_bound_resident_rows() {
    let db = Database::from_catalog(gen_xy(&GenConfig::sized(2048)));
    let src = "SELECT x.n FROM X x";
    let batch = 64usize;
    let serial = db
        .query_with(src, QueryOptions::default().threads(1).batch_size(batch))
        .expect("serial scan");
    for threads in [4usize, 8] {
        let par = db
            .query_with(
                src,
                QueryOptions::default().threads(threads).batch_size(batch),
            )
            .expect("parallel scan");
        assert_eq!(par.values, serial.values, "threads={threads}");
        let bound = serial.metrics.peak_resident_rows + (batch + threads) as u64;
        assert!(
            par.metrics.peak_resident_rows <= bound,
            "threads={threads}: peak {} exceeds serial peak {} + one batch",
            par.metrics.peak_resident_rows,
            serial.metrics.peak_resident_rows
        );
    }
}

/// `threads` beyond the partition count degrades gracefully (idle workers,
/// same answer), and `threads(0)` clamps to serial.
#[test]
fn extreme_thread_counts_are_safe() {
    let db = Database::from_catalog(gen_rs(&GenConfig::sized(64)));
    let serial = db
        .query_with(COUNT_BUG, QueryOptions::default().threads(1))
        .expect("serial run");
    for threads in [0usize, 64] {
        let got = db
            .query_with(COUNT_BUG, QueryOptions::default().threads(threads))
            .expect("clamped/oversubscribed run");
        assert_eq!(got.values, serial.values, "threads={threads}");
    }
}
