//! Experiment E6: the Section 8 query processing example.
//!
//! The acyclic three-block query with neighbour correlation predicates:
//!
//! ```text
//! SELECT x FROM X x
//! WHERE x.a ⊆ (SELECT y.a FROM Y y
//!              WHERE x.b = y.b AND
//!                    y.c ⊆ (SELECT z.c FROM Z z WHERE y.d = z.d))
//! ```
//!
//! Both predicates require grouping (Table 2), so the paper's strategy is
//! two nest joins, built inside-out — steps (1)–(4) of Section 8. When the
//! operators change to ∈ / ∉, the inner nest join becomes an antijoin and
//! the outer one a semijoin.

use tmql::{Database, Plan, QueryOptions, UnnestStrategy, Value};
use tmql_workload::gen::{gen_xyz, GenConfig};
use tmql_workload::queries::{SECTION8, SECTION8_FLAT};
use tmql_workload::schemas::section8_catalog;

#[test]
fn subseteq_version_uses_two_nest_joins() {
    let db = Database::from_catalog(section8_catalog());
    let (translated, plan) = db
        .plan_with(
            SECTION8,
            QueryOptions::default().strategy(UnnestStrategy::Optimal),
        )
        .unwrap();
    assert_eq!(
        translated.count_nodes(&mut |n| matches!(n, Plan::Apply { .. })),
        2,
        "two nested blocks"
    );
    assert!(!plan.has_apply(), "{plan}");
    assert_eq!(
        plan.count_nodes(&mut |n| matches!(n, Plan::NestJoin { .. })),
        2,
        "both blocks become nest joins (steps 1 and 3)\n{plan}"
    );
    // Step order: the Y Δ Z nest join must sit under the X Δ (…) one.
    let Some(outer_right_has_nj) = find_outer_nestjoin_right(&plan) else {
        panic!("outer nest join not found\n{plan}");
    };
    assert!(
        outer_right_has_nj,
        "inner nest join feeds the outer's right operand\n{plan}"
    );
}

fn find_outer_nestjoin_right(plan: &Plan) -> Option<bool> {
    let mut result = None;
    plan.any_node(&mut |n| {
        if let Plan::NestJoin { left, right, .. } = n {
            if matches!(&**left, Plan::ScanTable { table, .. } if table == "X") {
                result = Some(right.has_nest_join());
                return true;
            }
        }
        false
    });
    result
}

#[test]
fn subseteq_version_expected_result() {
    // Hand-computed on the fixed fixture (see schemas::section8_catalog):
    // x2 = (∅, 2) and x4 = ({3}, 1) qualify.
    let db = Database::from_catalog(section8_catalog());
    let r = db.query(SECTION8).unwrap();
    assert_eq!(r.len(), 2, "{:?}", r.values);
    let bs: Vec<i64> = r
        .values
        .iter()
        .map(|v| v.as_tuple().unwrap().get("b").unwrap().as_int().unwrap())
        .collect();
    assert!(bs.contains(&2));
    assert!(bs.contains(&1));
    // The ∅-attribute row relies on correct dangling handling end-to-end.
    let has_empty = r
        .values
        .iter()
        .any(|v| v.as_tuple().unwrap().get("a").unwrap() == &Value::empty_set());
    assert!(has_empty);
}

#[test]
fn flat_version_replaces_nest_joins_with_semi_and_anti() {
    // "the nest join operation in (1) may be replaced by an antijoin
    // operation, and the nest join in (3) may be replaced by a semijoin."
    let db = Database::from_catalog(section8_catalog());
    let (_, plan) = db
        .plan_with(
            SECTION8_FLAT,
            QueryOptions::default().strategy(UnnestStrategy::Optimal),
        )
        .unwrap();
    assert!(!plan.has_apply(), "{plan}");
    assert!(!plan.has_nest_join(), "no grouping needed anywhere\n{plan}");
    assert!(
        plan.any_node(&mut |n| matches!(n, Plan::SemiJoin { .. })),
        "outer block → semijoin\n{plan}"
    );
    assert!(
        plan.any_node(&mut |n| matches!(n, Plan::AntiJoin { .. })),
        "inner block → antijoin\n{plan}"
    );
}

#[test]
fn all_strategies_agree_on_both_versions() {
    for (name, src) in [("SECTION8", SECTION8), ("SECTION8_FLAT", SECTION8_FLAT)] {
        for cfg in [
            GenConfig {
                outer: 25,
                inner: 30,
                dangling_fraction: 0.3,
                ..GenConfig::default()
            },
            GenConfig {
                outer: 40,
                inner: 20,
                dangling_fraction: 0.0,
                ..GenConfig::default()
            },
        ] {
            let db = Database::from_catalog(gen_xyz(&cfg));
            let oracle = db
                .query_with(
                    src,
                    QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
                )
                .unwrap();
            for strat in [
                UnnestStrategy::Optimal,
                UnnestStrategy::NestJoin,
                UnnestStrategy::GanskiWong,
                UnnestStrategy::FlattenSemiAnti,
            ] {
                let got = db
                    .query_with(src, QueryOptions::default().strategy(strat))
                    .unwrap();
                assert_eq!(got.values, oracle.values, "{name} under {}", strat.name());
            }
        }
    }
}

#[test]
fn flat_version_does_less_work_than_nest_join_version() {
    // The Section 8 punchline: semi/antijoins "can be implemented more
    // efficiently than the nest (or regular) join operator".
    let cfg = GenConfig {
        outer: 120,
        inner: 150,
        dangling_fraction: 0.25,
        ..GenConfig::default()
    };
    let db = Database::from_catalog(gen_xyz(&cfg));
    let flat = db
        .query_with(
            SECTION8_FLAT,
            QueryOptions::default().strategy(UnnestStrategy::Optimal),
        )
        .unwrap();
    let forced_nj = db
        .query_with(
            SECTION8_FLAT,
            QueryOptions::default().strategy(UnnestStrategy::NestJoin),
        )
        .unwrap();
    assert_eq!(flat.values, forced_nj.values);
    assert!(
        flat.metrics.total_work() <= forced_nj.metrics.total_work(),
        "flat {} vs nest join {}",
        flat.metrics.total_work(),
        forced_nj.metrics.total_work()
    );
}
