//! End-to-end test of the `tmql-shell` binary: drive it through stdin and
//! check the output, including the live COUNT-bug demonstration.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_shell(input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tmql-shell"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("shell starts");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write input");
    let out = child.wait_with_output().expect("shell exits");
    assert!(out.status.success(), "shell exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn query_and_metadata_commands() {
    let out = run_shell(
        "\\tables\n\
         SELECT d.name FROM DEPT d\n\
         \\quit\n",
    );
    assert!(out.contains("DEPT (3 rows)"), "{out}");
    assert!(out.contains("\"cs\""), "{out}");
    assert!(out.contains("-- 3 rows"), "{out}");
}

#[test]
fn count_bug_demo_in_shell() {
    let out = run_shell(
        "\\load countbug\n\
         \\strategies SELECT x FROM R x WHERE x.b = COUNT((SELECT y.d FROM S y WHERE x.c = y.c))\n\
         \\quit\n",
    );
    assert!(out.contains("differs from oracle!"), "Kim's bug must be flagged:\n{out}");
    // Exactly one strategy differs.
    assert_eq!(out.matches("differs from oracle!").count(), 1, "{out}");
}

#[test]
fn strategy_and_algo_switching() {
    let out = run_shell(
        "\\strategy nest-join\n\
         \\algo merge\n\
         SELECT e.name FROM EMP e WHERE e.sal > 5000\n\
         \\strategy bogus\n\
         \\quit\n",
    );
    assert!(out.contains("strategy: nest-join"), "{out}");
    assert!(out.contains("algo: SortMerge"), "{out}");
    assert!(out.contains("[nest-join; SortMerge]"), "{out}");
    assert!(out.contains("unknown strategy"), "{out}");
}

#[test]
fn explain_and_errors_dont_crash() {
    let out = run_shell(
        "\\explain SELECT x FROM X x\n\
         SELECT nope FROM DEPT d\n\
         \\load nosuchdataset\n\
         \\nosuchcommand\n\
         \\quit\n",
    );
    // X is unknown in the company catalog: a type error, not a crash.
    assert!(out.contains("error"), "{out}");
    assert!(out.contains("unknown dataset"), "{out}");
    assert!(out.contains("unknown command"), "{out}");
    assert!(out.contains("bye"), "{out}");
}

#[test]
fn generated_dataset_load() {
    let out = run_shell(
        "\\load xy 64\n\
         SELECT x.n FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)\n\
         \\quit\n",
    );
    assert!(out.contains("X(64)"), "{out}");
    assert!(out.contains("rows in"), "{out}");
}
