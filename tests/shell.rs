//! End-to-end test of the `tmql-shell` binary: drive it through stdin and
//! check the output, including the live COUNT-bug demonstration.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_shell(input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tmql-shell"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("shell starts");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write input");
    let out = child.wait_with_output().expect("shell exits");
    assert!(out.status.success(), "shell exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn query_and_metadata_commands() {
    let out = run_shell(
        "\\tables\n\
         SELECT d.name FROM DEPT d\n\
         \\quit\n",
    );
    assert!(out.contains("DEPT (3 rows)"), "{out}");
    assert!(out.contains("\"cs\""), "{out}");
    assert!(out.contains("-- 3 rows"), "{out}");
}

#[test]
fn count_bug_demo_in_shell() {
    let out = run_shell(
        "\\load countbug\n\
         \\strategies SELECT x FROM R x WHERE x.b = COUNT((SELECT y.d FROM S y WHERE x.c = y.c))\n\
         \\quit\n",
    );
    assert!(
        out.contains("differs from oracle!"),
        "Kim's bug must be flagged:\n{out}"
    );
    // Exactly one strategy differs.
    assert_eq!(out.matches("differs from oracle!").count(), 1, "{out}");
}

#[test]
fn strategy_and_algo_switching() {
    let out = run_shell(
        "\\strategy nest-join\n\
         \\algo merge\n\
         SELECT e.name FROM EMP e WHERE e.sal > 5000\n\
         \\strategy bogus\n\
         \\quit\n",
    );
    assert!(out.contains("strategy: nest-join"), "{out}");
    assert!(out.contains("algo: SortMerge"), "{out}");
    assert!(out.contains("[nest-join; SortMerge]"), "{out}");
    assert!(out.contains("unknown strategy"), "{out}");
}

#[test]
fn explain_and_errors_dont_crash() {
    let out = run_shell(
        "\\explain SELECT x FROM X x\n\
         SELECT nope FROM DEPT d\n\
         \\load nosuchdataset\n\
         \\nosuchcommand\n\
         \\quit\n",
    );
    // X is unknown in the company catalog: a type error, not a crash.
    assert!(out.contains("error"), "{out}");
    assert!(out.contains("unknown dataset"), "{out}");
    assert!(out.contains("unknown command"), "{out}");
    assert!(out.contains("bye"), "{out}");
}

#[test]
fn help_lists_every_implemented_command() {
    // The shell dispatches on these command heads (aliases excluded); each
    // must be documented in `\help` so the help text cannot rot again the
    // way it once missed `\profile`.
    let commands = [
        "\\load",
        "\\open",
        "\\persist",
        "\\tables",
        "\\strategy",
        "\\algo",
        "\\set",
        "\\show",
        "\\explain",
        "\\profile",
        "\\strategies",
        "\\help",
        "\\quit",
        "BEGIN",
        "COMMIT",
        "ROLLBACK",
    ];
    let out = run_shell("\\help\n\\quit\n");
    for cmd in commands {
        assert!(
            out.contains(cmd),
            "`\\help` does not mention `{cmd}`:\n{out}"
        );
    }
    // And the `\set` options are spelled out.
    for opt in [
        "batch_size",
        "memory_budget",
        "threads",
        "rules",
        "typecheck",
    ] {
        assert!(
            out.contains(opt),
            "`\\help` does not mention \\set option `{opt}`:\n{out}"
        );
    }
}

#[test]
fn set_and_show_session_options() {
    let out = run_shell(
        "\\show\n\
         \\set memory_budget 64\n\
         \\set batch_size 128\n\
         \\set rules off\n\
         \\show\n\
         \\set memory_budget off\n\
         \\set bogus 1\n\
         \\set memory_budget notanumber\n\
         \\quit\n",
    );
    assert!(out.contains("memory_budget  unbounded"), "{out}");
    assert!(out.contains("memory_budget: 64 rows"), "{out}");
    assert!(out.contains("memory_budget  64 rows"), "{out}");
    assert!(out.contains("batch_size     128"), "{out}");
    assert!(out.contains("rules          off"), "{out}");
    assert!(out.contains("memory_budget: unbounded"), "{out}");
    assert!(out.contains("unknown option `bogus`"), "{out}");
    assert!(out.contains("usage: \\set memory_budget"), "{out}");
}

#[test]
fn set_and_show_threads() {
    let out = run_shell(
        "\\set threads 3\n\
         \\show\n\
         SELECT d.name FROM DEPT d\n\
         \\set threads 0\n\
         \\set threads auto\n\
         \\quit\n",
    );
    assert!(out.contains("threads: 3"), "{out}");
    assert!(out.contains("threads        3"), "{out}");
    assert!(out.contains("-- 3 rows"), "{out}");
    assert!(out.contains("usage: \\set threads"), "{out}");
    assert!(out.contains("(auto)"), "{out}");
}

#[test]
fn memory_budget_makes_queries_spill() {
    // xy(512): the semijoin build side is 512 rows; a 32-row budget forces
    // grace-hash spilling, visible in the metrics line.
    let out = run_shell(
        "\\load xy 512\n\
         \\set memory_budget 32\n\
         SELECT x.n FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)\n\
         \\quit\n",
    );
    assert!(out.contains("spilled="), "{out}");
    assert!(
        !out.contains("spilled=0 "),
        "budgeted run must actually spill:\n{out}"
    );
}

#[test]
fn persist_then_open_round_trips_across_shell_sessions() {
    let path = std::env::temp_dir().join(format!("tmql-shell-test-{}.tmdb", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let p = path.display();
    // Session 1: load a generated dataset and persist it.
    let out = run_shell(&format!(
        "\\load xy 64\n\
         \\persist {p}\n\
         \\show\n\
         SELECT x.n FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)\n\
         \\quit\n"
    ));
    assert!(out.contains("persisted 2 table(s)"), "{out}");
    assert!(out.contains("database: disk-backed"), "{out}");
    let rows_line = out
        .lines()
        .find(|l| l.contains("rows in"))
        .expect("query ran")
        .to_string();
    // Session 2: a fresh process opens the file and gets the same answer.
    let out2 = run_shell(&format!(
        "\\open {p}\n\
         SELECT x.n FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)\n\
         \\quit\n"
    ));
    assert!(
        out2.contains("X(64)"),
        "reopened tables list their row counts:\n{out2}"
    );
    let rows = rows_line
        .split(" rows")
        .next()
        .unwrap()
        .rsplit(' ')
        .next()
        .unwrap();
    assert!(
        out2.contains(&format!("-- {rows} rows")),
        "reopened database must answer identically ({rows_line}):\n{out2}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn transactions_group_statements_across_shell_sessions() {
    let path =
        std::env::temp_dir().join(format!("tmql-shell-txn-test-{}.tmdb", std::process::id()));
    let wal = {
        let mut w = path.clone().into_os_string();
        w.push(".wal");
        std::path::PathBuf::from(w)
    };
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
    let p = path.display();
    // Session 1: a rolled-back index never happened; a committed one is
    // durable. Statement forms are case-insensitive with optional `;`.
    let out = run_shell(&format!(
        "\\load xy 64\n\
         \\persist {p}\n\
         begin;\n\
         \\index create X b\n\
         rollback\n\
         \\index list\n\
         commit\n\
         BEGIN\n\
         \\index create X b\n\
         \\show\n\
         COMMIT;\n\
         \\quit\n"
    ));
    assert!(out.contains("transaction open"), "{out}");
    assert!(out.contains("rolled back"), "{out}");
    assert!(
        out.contains("no indexes"),
        "rollback must discard the index:\n{out}"
    );
    assert!(
        out.contains("error: no open transaction to commit"),
        "stray COMMIT reports an error:\n{out}"
    );
    assert!(out.contains("transaction: open"), "{out}");
    assert!(out.contains("committed"), "{out}");
    // Session 2: the committed transaction survives the process.
    let out2 = run_shell(&format!("\\open {p}\n\\index list\n\\show\n\\quit\n"));
    assert!(
        out2.contains("X.b (64 entries)"),
        "committed index persists:\n{out2}"
    );
    assert!(out2.contains("transaction: none"), "{out2}");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn generated_dataset_load() {
    let out = run_shell(
        "\\load xy 64\n\
         SELECT x.n FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)\n\
         \\quit\n",
    );
    assert!(out.contains("X(64)"), "{out}");
    assert!(out.contains("rows in"), "{out}");
}

#[test]
fn analyze_statement_prints_executed_tree() {
    let out = run_shell(
        "analyze SELECT d.name FROM DEPT d\n\
         \\quit\n",
    );
    assert!(out.contains("== analyze (executed) =="), "{out}");
    assert!(out.contains("Scan(DEPT) [rows=3 est=3"), "{out}");
    assert!(out.contains("time="), "per-operator wall time:\n{out}");
    assert!(out.contains("max_qerror="), "{out}");
    assert!(out.contains("total_work="), "{out}");
}

#[test]
fn metrics_command_renders_prometheus_text() {
    let out = run_shell(
        "SELECT d.name FROM DEPT d\n\
         \\metrics\n\
         \\quit\n",
    );
    assert!(out.contains("# TYPE tmql_queries_total counter"), "{out}");
    assert!(out.contains("tmql_queries_total 1\n"), "{out}");
    assert!(out.contains("tmql_exec_rows_scanned_total"), "{out}");
    assert!(out.contains("tmql_query_wall_micros_count 1\n"), "{out}");
    assert!(
        out.contains("tmql_query_wall_micros_bucket{le=\"+Inf\"} 1"),
        "{out}"
    );
}

#[test]
fn stats_command_in_memory_and_disk_backed() {
    // In-memory: every storage section reports n/a.
    let out = run_shell("\\stats\n\\quit\n");
    assert!(out.contains("buffer pool: n/a"), "{out}");
    assert!(out.contains("wal: n/a"), "{out}");
    assert!(out.contains("recovery: n/a"), "{out}");

    // Disk-backed: pool, WAL, free list, and recovery all report.
    let path =
        std::env::temp_dir().join(format!("tmql-shell-stats-test-{}.tmdb", std::process::id()));
    let wal = {
        let mut w = path.clone().into_os_string();
        w.push(".wal");
        std::path::PathBuf::from(w)
    };
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
    let p = path.display();
    let out = run_shell(&format!(
        "\\open {p}\n\
         \\load rs 100\n\
         \\persist {p}2\n\
         SELECT r.a FROM R r WHERE r.b = 0\n\
         \\stats\n\
         \\metrics\n\
         \\quit\n"
    ));
    assert!(out.contains("buffer pool:"), "{out}");
    assert!(out.contains("hit rate"), "{out}");
    assert!(out.contains("pages resident"), "{out}");
    assert!(out.contains("wal:"), "{out}");
    assert!(out.contains("lifetime:"), "{out}");
    assert!(out.contains("free list:"), "{out}");
    assert!(out.contains("recovery: clean open"), "{out}");
    assert!(out.contains("tmql_pool_hits_total"), "{out}");
    assert!(out.contains("tmql_wal_appends_total"), "{out}");
    for f in [&path, &wal] {
        let _ = std::fs::remove_file(f);
    }
    let _ = std::fs::remove_file(format!("{p}2"));
    let _ = std::fs::remove_file(format!("{p}2.wal"));
}
