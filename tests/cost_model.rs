//! The cost-based decision layer end to end: storage statistics →
//! estimates → per-block strategy choice, estimated rows in `EXPLAIN`,
//! and estimated-vs-actual in the executed profile.

use tmql::{Database, Plan, QueryOptions, UnnestStrategy};
use tmql_workload::gen::{gen_rs, GenConfig};
use tmql_workload::queries::{COUNT_BUG, MEMBERSHIP};

fn rs_db(outer: usize, inner: usize) -> Database {
    let cfg = GenConfig {
        outer,
        inner,
        dangling_fraction: 0.25,
        ..GenConfig::default()
    };
    Database::from_catalog(gen_rs(&cfg))
}

fn plan_for(db: &Database, src: &str, strat: UnnestStrategy) -> Plan {
    db.plan_with(src, QueryOptions::default().strategy(strat))
        .expect("plans")
        .1
}

/// The headline divergence: on the COUNT-bug query with a high inner
/// fan-out, grouping *first* (Muralikrishna's γ + ⟕) touches each inner
/// row once and joins 1:1, while the rule-based Optimal pipeline's nest
/// join materializes a set per outer row before aggregating. The cost
/// model sees this through the stats; the rules cannot.
#[test]
fn cost_based_diverges_from_optimal_at_high_fanout() {
    let db = rs_db(128, 1024);
    let rule = plan_for(&db, COUNT_BUG, UnnestStrategy::Optimal);
    let cost = plan_for(&db, COUNT_BUG, UnnestStrategy::CostBased);
    assert!(
        rule.has_nest_join(),
        "rule-based choice is the nest join: {rule}"
    );
    assert!(
        !cost.has_nest_join(),
        "cost-based picks group-first here: {cost}"
    );
    assert!(
        cost.any_node(&mut |n| matches!(n, Plan::GroupAgg { .. })),
        "group-first shape expected: {cost}"
    );
    // Different plan, same answer.
    let a = db.query_with(COUNT_BUG, QueryOptions::default()).unwrap();
    let b = db
        .query_with(
            COUNT_BUG,
            QueryOptions::default().strategy(UnnestStrategy::Optimal),
        )
        .unwrap();
    assert_eq!(a.values, b.values);
}

/// At balanced cardinalities the nest join wins the cost race and the
/// cost-based choice coincides with the paper's pipeline.
#[test]
fn cost_based_agrees_with_optimal_at_balanced_sizes() {
    let db = rs_db(128, 128);
    let rule = plan_for(&db, COUNT_BUG, UnnestStrategy::Optimal);
    let cost = plan_for(&db, COUNT_BUG, UnnestStrategy::CostBased);
    assert_eq!(rule, cost, "same choice expected at fan-out ≈ 1");
    assert!(cost.has_nest_join());
}

/// Theorem 1 flattening stays the winner wherever it applies: the
/// semijoin does strictly less work than any grouping strategy.
#[test]
fn cost_based_keeps_semijoin_for_membership() {
    let cfg = GenConfig {
        outer: 128,
        inner: 512,
        ..GenConfig::default()
    };
    let db = Database::from_catalog(tmql_workload::gen::gen_xy(&cfg));
    let cost = plan_for(&db, MEMBERSHIP, UnnestStrategy::CostBased);
    assert!(
        cost.any_node(&mut |n| matches!(n, Plan::SemiJoin { .. })),
        "{cost}"
    );
    assert!(!cost.has_apply());
}

/// `EXPLAIN` carries the cost model's per-operator row estimates in both
/// the optimized-logical and physical sections.
#[test]
fn explain_shows_estimated_rows() {
    let db = rs_db(64, 64);
    let s = db.explain(COUNT_BUG).unwrap();
    let optimized = s.split("== optimized").nth(1).unwrap();
    assert!(optimized.contains("est_rows="), "{s}");
    let physical = s.split("== physical ==").nth(1).unwrap();
    assert!(physical.contains("est_rows="), "{s}");
    // The root scan's estimate is exact: stats know the cardinality.
    assert!(physical.contains("est_rows=64"), "{s}");
}

/// The executed profile shows estimated and actual rows side by side, and
/// the structured profiles expose a finite q-error.
#[test]
fn profile_shows_estimated_vs_actual() {
    let db = rs_db(64, 64);
    let s = db.profile_with(COUNT_BUG, QueryOptions::default()).unwrap();
    assert!(s.contains("est="), "estimates missing from profile: {s}");
    let r = db.query_with(COUNT_BUG, QueryOptions::default()).unwrap();
    assert!(!r.ops.is_empty());
    assert!(
        r.ops.iter().all(|op| op.est_rows.is_some()),
        "every operator estimated"
    );
    let q = r.max_qerror();
    assert!(q >= 1.0 && q.is_finite(), "q-error {q}");
    // Scans are estimated exactly, so at least one operator has q-error 1.
    assert!(
        r.ops.iter().any(|op| op.qerror() == Some(1.0)),
        "{:?}",
        r.ops
    );
}

/// Facade-level pin of the Section 3.2 restriction: a subquery iterating a
/// set-valued attribute of the outer variable cannot be decorrelated, so
/// the cost-based default keeps the nested loop (the `Apply` survives).
#[test]
fn cost_based_keeps_nested_loop_for_set_valued_operands() {
    use tmql::{Record, Table, Ty, Value};
    let mut db = Database::new();
    let mut t = Table::new(
        "DEPT",
        vec![
            ("mgr".into(), Ty::Int),
            ("emps".into(), Ty::Set(Box::new(Ty::Int))),
        ],
    );
    t.insert(
        Record::new([
            ("mgr".to_string(), Value::Int(1)),
            (
                "emps".to_string(),
                Value::set([Value::Int(1), Value::Int(2)]),
            ),
        ])
        .unwrap(),
    )
    .unwrap();
    db.register_table(t).unwrap();
    let q = "SELECT d FROM DEPT d WHERE d.mgr IN (SELECT e FROM d.emps e)";
    let (_, plan) = db.plan_with(q, QueryOptions::default()).unwrap();
    assert!(plan.has_apply(), "not closed → nested loop: {plan}");
    let r = db.query(q).unwrap();
    assert_eq!(r.len(), 1);
}
