//! Experiment E4: the Section 5 UNNEST special case.
//!
//! `UNNEST(SELECT (SELECT (a = x.n, b = y.b) FROM Y y WHERE x.b = y.a) FROM X x)`
//! is equivalent to the flat join
//! `SELECT (a = x.n, b = y.b) FROM X x, Y y WHERE x.b = y.a` — "the one
//! special case in which grouping can be avoided" for SELECT-clause
//! nesting.

use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_workload::gen::{gen_xy, GenConfig};
use tmql_workload::queries::UNNEST_COLLAPSE;

fn db() -> Database {
    let cfg = GenConfig {
        outer: 25,
        inner: 30,
        dangling_fraction: 0.3,
        ..GenConfig::default()
    };
    Database::from_catalog(gen_xy(&cfg))
}

#[test]
fn collapse_rule_produces_flat_join() {
    let db = db();
    let (translated, optimized) = db
        .plan_with(UNNEST_COLLAPSE, QueryOptions::default())
        .unwrap();
    assert!(
        translated.has_apply(),
        "before: nested-loop semantics\n{translated}"
    );
    assert!(!optimized.has_apply(), "after: decorrelated\n{optimized}");
    assert!(
        !optimized.has_nest_join(),
        "after: no grouping at all\n{optimized}"
    );
    assert!(
        optimized.any_node(&mut |n| matches!(n, tmql::Plan::Join { .. })),
        "after: a plain join\n{optimized}"
    );
}

#[test]
fn collapse_equals_flat_join_query() {
    let db = db();
    let collapsed = db.query(UNNEST_COLLAPSE).unwrap();
    let flat = db
        .query("SELECT (a = x.n, b = y.b) FROM X x, Y y WHERE x.b = y.a")
        .unwrap();
    assert_eq!(collapsed.values, flat.values);
}

#[test]
fn collapse_equals_nested_loop_semantics() {
    let db = db();
    let oracle = db
        .query_with(
            UNNEST_COLLAPSE,
            QueryOptions {
                apply_rules: false,
                ..QueryOptions::default()
            }
            .strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    let optimized = db.query(UNNEST_COLLAPSE).unwrap();
    assert_eq!(optimized.values, oracle.values);
    // Under nest join without the collapse rule the result must also
    // agree (set-of-sets built, then flattened).
    let nj = db
        .query_with(
            UNNEST_COLLAPSE,
            QueryOptions {
                apply_rules: false,
                ..QueryOptions::default()
            }
            .strategy(UnnestStrategy::NestJoin),
        )
        .unwrap();
    assert_eq!(nj.values, oracle.values);
}

#[test]
fn collapse_saves_work() {
    let db = db();
    let with_rule = db.query(UNNEST_COLLAPSE).unwrap();
    let without_rule = db
        .query_with(
            UNNEST_COLLAPSE,
            QueryOptions {
                apply_rules: false,
                ..QueryOptions::default()
            }
            .strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    assert!(
        with_rule.metrics.total_work() < without_rule.metrics.total_work(),
        "collapsed {} vs nested-loop {}",
        with_rule.metrics.total_work(),
        without_rule.metrics.total_work()
    );
}
