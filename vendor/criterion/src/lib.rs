//! Offline shim for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this path crate
//! supplies the subset of the `criterion 0.5` API the bench targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It is a real (if minimal) timing harness, not a no-op: each benchmark
//! runs a warm-up phase, then `sample_size` timed samples (auto-scaled
//! batch size so a sample is long enough to measure), and reports
//! mean/min/max per iteration to stdout in a stable, greppable format.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark driver configuration, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// CLI-argument hook; accepted and ignored by the shim (cargo bench
    /// passes `--bench`, which needs no handling here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        run_benchmark(self, &label, &mut f);
        self
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    /// Benchmark a routine with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(self.criterion, &label, &mut f);
        self
    }

    /// End the group (reporting is per-benchmark in the shim).
    pub fn finish(self) {}
}

/// Identifier for one benchmark: a function label plus a parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("algo", n)` renders as `algo/n`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `self.iters` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(c: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: also discovers how many iterations fit in a sample.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut per_iter = Duration::from_secs(1);
    while warm_start.elapsed() < c.warm_up_time {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        // Calibrate on the fastest observed iteration: a single scheduler
        // stall must not shrink the batch size for every sample.
        per_iter = per_iter.min(b.elapsed.max(Duration::from_nanos(1)));
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }

    // Choose a batch size so each sample spans roughly
    // measurement_time / sample_size.
    let sample_budget = c.measurement_time / (c.sample_size as u32);
    let iters_per_sample =
        (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut means = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        means.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = means.first().copied().unwrap_or(0.0);
    let max = means.last().copied().unwrap_or(0.0);
    let mean = means.iter().sum::<f64>() / means.len() as f64;
    println!(
        "{:<60} time: [{} {} {}]",
        label,
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Defines a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function(BenchmarkId::new("noop", 0), |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .configure_from_args();
        sample_bench(&mut c);
    }
}
