//! Offline shim for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this path crate supplies the (deliberately tiny) subset of the
//! `rand 0.8` API that the workspace uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is SplitMix64 — a statistically solid 64-bit generator
//! (it seeds xoshiro in the real ecosystem), deterministic per seed, which
//! is exactly what the workload generators need. It makes no cryptographic
//! claims, and its streams differ from the real `rand::rngs::StdRng`.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the "standard" distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A seedable generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from the standard distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Sample uniformly from `self`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Rejection-free (modulo-bias-corrected) uniform draw in `[0, n)`.
fn uniform_u64<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening-multiply method (Lemire); one retry loop removes bias.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64::from_rng(rng) * (self.end - self.start);
        // start + u*(end-start) can round up to exactly `end`; the range
        // is half-open, so remap that measure-zero case onto `start`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f32::from_rng(rng) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(0..=3usize);
            assert!(u <= 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
