//! Offline shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this path crate
//! supplies the subset of the `proptest 1.x` API that the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`,
//! `prop_recursive` and `boxed`; range / tuple / `&str`-regex / [`Just`] /
//! [`any`] strategies; `prop::collection::{vec, btree_set}` and
//! `prop::option::of`; and the [`proptest!`], [`prop_oneof!`] and
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   (which are deterministic per test name, so failures replay);
//! * **regex strategies** cover the character-class subset actually used
//!   (`[a-z]{0,6}`-style classes plus `\PC` for printable chars);
//! * `prop_recursive(depth, ..)` builds a depth-bounded strategy tower
//!   rather than a probabilistic recursion budget.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic RNG (SplitMix64) driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's fully qualified name so each
    /// test has its own reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn usize_in(&mut self, lo: usize, hi_excl: usize) -> usize {
        if hi_excl <= lo {
            return lo;
        }
        lo + self.below((hi_excl - lo) as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Explicit test-case failure, mirroring `proptest::test_runner::TestCaseError`.
/// A property body may `return Err(TestCaseError::fail(..))` to fail a case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// Fail the current case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError {
            reason: reason.into(),
        }
    }

    /// Alias kept for API compatibility: the shim has no rejection
    /// machinery, so a rejected case simply fails.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::fail(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `f` receives a strategy for the
    /// recursive positions and returns a strategy for composite values.
    /// `depth` bounds the recursion; `_desired_size` and `_expected_branch`
    /// are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            // Mix the base back in at every level so generated trees have
            // leaves at all depths, not only at the bottom.
            let composite = f(level).boxed();
            level = Union {
                arms: vec![base.clone(), composite],
            }
            .boxed();
        }
        level
    }

    /// Type-erase into a cloneable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.sample_value(rng)),
        }
    }
}

/// Type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Uniform choice between type-erased arms; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from already-boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.arms.len());
        self.arms[i].sample_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- ranges ---------------------------------------------------------------

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.f64_unit() * (self.end - self.start);
        // Rounding can land exactly on the exclusive bound; remap that
        // measure-zero case onto `start`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.f64_unit() as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

// --- string patterns ------------------------------------------------------

/// `&str` regex-subset strategies: sequences of `[class]{m,n}` atoms, a
/// literal char, or `\PC` (any printable char). This covers the patterns
/// used in the workspace's tests.
impl Strategy for &'static str {
    type Value = String;
    fn sample_value(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample_value(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    /// A set of candidate chars.
    Class(Vec<char>),
    /// Any printable character (`\PC`).
    Printable,
    /// A literal character.
    Lit(char),
}

fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let mut atoms = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                for d in chars.by_ref() {
                    match d {
                        ']' => break,
                        // A '-' after a char opens a range; the next char
                        // closes it (handled in the arm below).
                        '-' => set.push('-'),
                        d => {
                            if set.last() == Some(&'-') && prev.is_some() {
                                set.pop(); // the '-'
                                let lo = set.pop().unwrap();
                                for r in lo as u32..=d as u32 {
                                    if let Some(ch) = char::from_u32(r) {
                                        set.push(ch);
                                    }
                                }
                                prev = None;
                                continue;
                            }
                            set.push(d);
                            prev = Some(d);
                        }
                    }
                }
                assert!(!set.is_empty(), "empty char class in pattern {pat:?}");
                Atom::Class(set)
            }
            '\\' => {
                let p = chars.next();
                let cc = chars.next();
                assert!(
                    p == Some('P') && cc == Some('C'),
                    "unsupported escape in pattern {pat:?} (only \\PC is implemented)"
                );
                Atom::Printable
            }
            lit => Atom::Lit(lit),
        };
        // Optional {m,n} / {n} quantifier.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad quantifier"),
                    b.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn sample_pattern(pat: &str, rng: &mut TestRng) -> String {
    let atoms = parse_pattern(pat);
    let mut out = String::new();
    for (atom, lo, hi) in &atoms {
        let n = rng.usize_in(*lo, hi + 1);
        for _ in 0..n {
            match atom {
                Atom::Class(set) => out.push(set[rng.usize_in(0, set.len())]),
                Atom::Printable => {
                    // Mostly printable ASCII, occasionally non-ASCII to keep
                    // parsers honest about UTF-8.
                    if rng.below(16) == 0 {
                        const EXOTIC: [char; 8] = ['λ', 'é', '∅', '⊆', '∈', '中', '𝔸', '\u{00A0}'];
                        out.push(EXOTIC[rng.usize_in(0, EXOTIC.len())]);
                    } else {
                        out.push((0x20u8 + rng.below(0x5F) as u8) as char);
                    }
                }
                Atom::Lit(c) => out.push(*c),
            }
        }
    }
    out
}

// --- any / Arbitrary ------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.f64_unit() * 2e6 - 1e6
    }
}

/// Strategy for any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --- tuples ---------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.sample_value(rng), )+)
            }
        }
    };
}

tuple_strategy!(S0 / 0);
tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

// --- collections and option ----------------------------------------------

/// `prop::collection` equivalents.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` of values from `elem`, length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_len(&self.len, rng);
            (0..n).map(|_| self.elem.sample_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with target size drawn from `size`.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of values from `elem`; duplicates collapse, so the
    /// resulting set may be smaller than the drawn size.
    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_len(&self.size, rng);
            (0..n).map(|_| self.elem.sample_value(rng)).collect()
        }
    }

    fn sample_len(range: &Range<usize>, rng: &mut TestRng) -> usize {
        rng.usize_in(range.start, range.end.max(range.start))
    }
}

/// `prop::option` equivalents.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`; `Some` with probability 3/4.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` values from `inner` (3/4 of the time), else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.sample_value(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(
                    let $pat = $crate::Strategy::sample_value(&($strat), &mut __rng);
                )+
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("proptest case failed: {}", e);
                }
            }
        }
    )*};
}

/// Uniform choice among strategies; all arms must generate the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn ident() -> impl Strategy<Value = String> {
        "[a-z]{1,3}"
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in -5i64..5, b in 0usize..4) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 4);
        }

        #[test]
        fn patterns_match_shape(s in "[a-z]{0,6}", t in ident()) {
            prop_assert!(s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!((1..=3).contains(&t.len()));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0i64..10, "[a-c]"), 0..5),
            o in prop::option::of(0i64..3),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() < 5);
            for (n, s) in &v {
                prop_assert!((0..10).contains(n));
                prop_assert_eq!(s.len(), 1);
            }
            if let Some(x) = o {
                prop_assert!((0..3).contains(&x));
            }
            let _ = flag;
        }
    }

    #[test]
    fn oneof_and_recursive() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = prop_oneof![(0i64..5).prop_map(Tree::Leaf), Just(Tree::Leaf(99))];
        let strat = leaf.prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_name("oneof_and_recursive");
        for _ in 0..200 {
            let t = strat.sample_value(&mut rng);
            assert!(depth(&t) <= 4, "depth bound violated: {t:?}");
        }
    }

    #[test]
    fn printable_pattern() {
        let mut rng = TestRng::from_name("printable");
        for _ in 0..100 {
            let s = Strategy::sample_value(&"\\PC{0,80}", &mut rng);
            assert!(s.chars().count() <= 80);
        }
    }
}
