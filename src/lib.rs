#![deny(missing_docs)]

//! # tmql — nested query optimization in a complex object model
//!
//! A full implementation of Steenhagen, Apers & Blanken, *Optimization of
//! Nested Queries in a Complex Object Model* (EDBT 1994): the TM
//! SELECT-FROM-WHERE language over complex objects, its complex object
//! algebra, and — the paper's contribution — the **nest join** operator Δ
//! plus the Theorem 1 classification that decides when a nested query can
//! instead be flattened into a semijoin/antijoin.
//!
//! ```
//! use tmql::{Database, QueryOptions, UnnestStrategy};
//! use tmql_storage::table::int_table;
//!
//! let mut db = Database::new();
//! db.register_table(int_table("X", &["a", "b"], &[&[1, 1], &[2, 9]])).unwrap();
//! db.register_table(int_table("Y", &["b", "c"], &[&[1, 10]])).unwrap();
//!
//! // Nested query: which X rows have no Y partners?
//! let result = db
//!     .query("SELECT x.a FROM X x WHERE COUNT((SELECT y.c FROM Y y WHERE x.b = y.b)) = 0")
//!     .unwrap();
//! assert_eq!(result.len(), 1); // x.a = 2 — dangling tuples are not lost
//!
//! // The optimizer flattened it into an antijoin (Theorem 1):
//! let explain = db.explain("SELECT x.a FROM X x \
//!                           WHERE COUNT((SELECT y.c FROM Y y WHERE x.b = y.b)) = 0").unwrap();
//! assert!(explain.contains("antijoin"));
//! # let _ = QueryOptions::default().strategy(UnnestStrategy::NestedLoop);
//! ```
//!
//! The crates underneath (each re-exported here):
//!
//! | crate | role |
//! |-------|------|
//! | `tmql-model` | complex object values, types, schemas |
//! | `tmql-storage` | stored extensions (in-memory and paged/disk-backed), catalog + persistence, buffer pool, statistics, spill runs |
//! | `tmql-lang` | the SFW language: parser + type checker |
//! | `tmql-algebra` | the complex object algebra (ADL-like) |
//! | `tmql-translate` | SFW → algebra (Apply-based nested-loop semantics) |
//! | `tmql-core` | **the paper**: Table 2 classifier, Theorem 1, unnesting strategies (incl. cost-based selection), nest join rules |
//! | `tmql-exec` | physical operators: NL/hash/sort-merge × join/semi/anti/outer/**nest join**; the statistics-backed cost estimator |
//! | `tmql-workload` | paper fixtures, random generators, query corpus |

use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

pub use tmql_algebra::Plan;
pub use tmql_core::{Classification, CostModel, UnnestStrategy};
pub use tmql_exec::{
    default_threads, CostEstimate, Estimator, ExecConfig, JoinAlgo, Metrics, OpProfile,
};
pub use tmql_model::{Record, Ty, Value};
pub use tmql_obs::{MetricsRegistry, QueryLog};
pub use tmql_storage::{Catalog, RecoveryReport, Table, WalActivity};

use tmql_exec::MetricsRecorder;
use tmql_obs::{json::ObjectBuilder, Counter, Histogram};

/// Adapter wiring `tmql-exec`'s statistics-backed [`Estimator`] into the
/// logical optimizer's [`CostModel`] trait — the seam through which
/// storage stats reach `UnnestStrategy::CostBased` without the core crate
/// depending on the execution crate.
#[derive(Debug, Clone, Copy)]
pub struct EstimatorCostModel<'a>(pub Estimator<'a>);

impl CostModel for EstimatorCostModel<'_> {
    fn total_cost(&self, plan: &Plan) -> f64 {
        self.0.cost(plan).total()
    }
}

/// Everything that can go wrong between source text and result set.
#[derive(Debug, Clone, PartialEq)]
pub enum TmqlError {
    /// Lexing/parsing failed.
    Parse(tmql_lang::ParseError),
    /// The query does not type-check.
    Type(tmql_lang::TypeError),
    /// Translation to the algebra failed.
    Translate(tmql_translate::TranslateError),
    /// Execution or catalog error.
    Model(tmql_model::ModelError),
}

impl fmt::Display for TmqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmqlError::Parse(e) => write!(f, "{e}"),
            TmqlError::Type(e) => write!(f, "{e}"),
            TmqlError::Translate(e) => write!(f, "{e}"),
            TmqlError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TmqlError {}

impl From<tmql_lang::ParseError> for TmqlError {
    fn from(e: tmql_lang::ParseError) -> Self {
        TmqlError::Parse(e)
    }
}

impl From<tmql_lang::TypeError> for TmqlError {
    fn from(e: tmql_lang::TypeError) -> Self {
        TmqlError::Type(e)
    }
}

impl From<tmql_translate::TranslateError> for TmqlError {
    fn from(e: tmql_translate::TranslateError) -> Self {
        TmqlError::Translate(e)
    }
}

impl From<tmql_model::ModelError> for TmqlError {
    fn from(e: tmql_model::ModelError) -> Self {
        TmqlError::Model(e)
    }
}

/// Per-query knobs: unnesting strategy, join algorithm, batch size, rule
/// cleanup, and whether to type-check before executing.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Logical unnesting strategy (default: cost-based per-block choice
    /// over storage statistics; `Optimal` is the paper's rule-based
    /// Section 8 pipeline).
    pub strategy: UnnestStrategy,
    /// Physical join algorithm selection (default: cost-based Auto).
    pub join_algo: JoinAlgo,
    /// Rows per streaming batch in the executor (default 1024). Smaller
    /// batches lower peak memory; larger batches amortize dispatch.
    pub batch_size: usize,
    /// Maximum rows any single pipeline breaker (hash-join build, grouping
    /// or set-operation state, dedup set) may hold resident before
    /// spilling to disk. `None` (the default) means unbounded — identical
    /// behavior to before the spill tier existed. See
    /// [`ExecConfig::memory_budget_rows`] for the exact semantics.
    ///
    /// ```
    /// use tmql::QueryOptions;
    ///
    /// let opts = QueryOptions::default().memory_budget(10_000);
    /// assert_eq!(opts.memory_budget_rows, Some(10_000));
    /// assert_eq!(QueryOptions::default().memory_budget_rows, None);
    /// ```
    pub memory_budget_rows: Option<usize>,
    /// Worker threads for morsel-driven parallel execution (clamped to
    /// ≥ 1). `1` runs exactly the serial executor; above `1`, table scans
    /// fan out morsels and spilled joins/breakers process their grace
    /// partitions partition-per-worker. Defaults to the `TMQL_THREADS`
    /// environment variable when set, else the machine's available
    /// parallelism — see [`tmql_exec::default_threads`].
    ///
    /// ```
    /// use tmql::QueryOptions;
    ///
    /// assert_eq!(QueryOptions::default().threads(4).threads, 4);
    /// assert_eq!(QueryOptions::default().threads(0).threads, 1);
    /// ```
    pub threads: usize,
    /// Memoize correlated `Apply` inner results by the outer row's
    /// correlation-binding values, and hoist correlation-independent
    /// inner work (default `true`). Duplicate bindings replay the cached
    /// result set — visible as `ainv=`/`ahit=` in the profile — and the
    /// cache evicts to respect [`QueryOptions::memory_budget_rows`].
    /// `false` restores the per-outer-row baseline (the `b12_apply`
    /// benchmark compares the two).
    ///
    /// ```
    /// use tmql::QueryOptions;
    ///
    /// assert!(QueryOptions::default().apply_cache);
    /// assert!(!QueryOptions::default().apply_cache(false).apply_cache);
    /// ```
    pub apply_cache: bool,
    /// Apply the Section 5/6 rewrite rules after unnesting.
    pub apply_rules: bool,
    /// Run the type checker (on by default; turn off for benchmarks that
    /// measure pure execution).
    pub typecheck: bool,
    /// Collect per-operator wall-clock timing during execution (default
    /// `true`; the `b14_observe` benchmark pins the overhead under 5%).
    /// When on, every operator's profile carries an inclusive `time=`
    /// span — see [`OpProfile::wall_nanos`] for the exact semantics under
    /// parallel worker waves. `false` skips all clock reads.
    ///
    /// ```
    /// use tmql::QueryOptions;
    ///
    /// assert!(QueryOptions::default().collect_timing);
    /// assert!(!QueryOptions::default().collect_timing(false).collect_timing);
    /// ```
    pub collect_timing: bool,
    /// Emit a structured JSONL record for this statement to the
    /// database's query log, when one is configured via the
    /// `TMQL_QUERY_LOG` environment variable (default `true`; a no-op
    /// without a configured log). `false` opts a single statement out —
    /// e.g. the metrics-scraping statements of a monitoring loop.
    pub query_log: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            strategy: UnnestStrategy::CostBased,
            join_algo: JoinAlgo::Auto,
            batch_size: tmql_exec::DEFAULT_BATCH_SIZE,
            memory_budget_rows: None,
            threads: tmql_exec::default_threads(),
            apply_cache: true,
            apply_rules: true,
            typecheck: true,
            collect_timing: true,
            query_log: true,
        }
    }
}

impl QueryOptions {
    /// Set the unnesting strategy.
    pub fn strategy(mut self, s: UnnestStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Set the join algorithm.
    pub fn join_algo(mut self, a: JoinAlgo) -> Self {
        self.join_algo = a;
        self
    }

    /// Set the streaming batch size (clamped to ≥ 1).
    pub fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    /// Bound resident breaker state to `n` rows, spilling beyond it
    /// (clamped to ≥ 1). Results are identical to an unbounded run; the
    /// spill traffic shows up in [`Metrics::rows_spilled`].
    pub fn memory_budget(mut self, n: usize) -> Self {
        self.memory_budget_rows = Some(n.max(1));
        self
    }

    /// Set the worker-thread count for parallel execution (clamped to
    /// ≥ 1; `1` is exactly the serial executor).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Enable or disable Apply binding memoization + hoisting (default
    /// on; `false` is the faithful per-outer-row baseline).
    pub fn apply_cache(mut self, on: bool) -> Self {
        self.apply_cache = on;
        self
    }

    /// Enable or disable per-operator wall-clock timing (default on).
    pub fn collect_timing(mut self, on: bool) -> Self {
        self.collect_timing = on;
        self
    }

    /// Enable or disable query-log emission for this statement (default
    /// on; only meaningful when `TMQL_QUERY_LOG` is set).
    pub fn query_log(mut self, on: bool) -> Self {
        self.query_log = on;
        self
    }

    fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            join_algo: self.join_algo,
            batch_size: self.batch_size,
            memory_budget_rows: self.memory_budget_rows,
            threads: self.threads.max(1),
            apply_cache: self.apply_cache,
            collect_timing: self.collect_timing,
        }
    }
}

/// A query result: the result **set** (TM queries denote sets) plus the
/// plans and metrics that produced it.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result values, deduplicated and ordered by the model's total
    /// order.
    pub values: BTreeSet<Value>,
    /// The logical plan after translation (nested-loop semantics).
    pub translated: Plan,
    /// The logical plan after unnesting/rules.
    pub optimized: Plan,
    /// Executor work counters.
    pub metrics: Metrics,
    /// The executed operator tree annotated with per-operator emitted
    /// rows/batches and the cost model's estimated rows (the streaming
    /// executor's profile with estimated vs. actual side by side).
    pub op_profile: String,
    /// Structured per-operator profiles (pre-order over the executed
    /// tree), each carrying estimated and actual output rows.
    pub ops: Vec<OpProfile>,
    /// Whole-statement wall-clock time in microseconds, parse through
    /// last row (also the value observed into the
    /// `tmql_query_wall_micros` histogram).
    pub wall_micros: u64,
}

impl QueryResult {
    /// Number of result values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the result is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The worst per-operator q-error of the run — `max(est/actual,
    /// actual/est)` over all executed operators (both sides floored at
    /// one row). 1.0 means every estimate was exact; CI smokes pin an
    /// upper bound on this to catch estimator regressions.
    ///
    /// ```
    /// use tmql::Database;
    /// use tmql_storage::table::int_table;
    ///
    /// let mut db = Database::new();
    /// db.register_table(int_table("X", &["a"], &[&[1], &[2], &[3]])).unwrap();
    /// let r = db.query("SELECT x.a FROM X x").unwrap();
    /// // Exact statistics on a plain scan-and-project: every operator's
    /// // estimate is spot on.
    /// assert_eq!(r.max_qerror(), 1.0);
    /// assert!(!r.ops.is_empty(), "structured per-operator profiles");
    /// ```
    pub fn max_qerror(&self) -> f64 {
        self.ops
            .iter()
            .filter_map(OpProfile::qerror)
            .fold(1.0, f64::max)
    }

    /// Render the `EXPLAIN ANALYZE` report for this (already executed)
    /// run: the executed operator tree — each operator annotated with
    /// actual rows, the cost model's estimated rows, batches, spilled
    /// rows, and inclusive wall-clock time — followed by the run's work
    /// counters (pool hits/misses, index probes, spill traffic, …) and a
    /// one-line summary. [`Database::analyze_with`] returns exactly this;
    /// the slow-query log embeds it for offending statements.
    pub fn render_analyze(&self) -> String {
        format!(
            "== analyze (executed) ==\n{}-- {}\n-- wall={}µs max_qerror={:.2} total_work={}\n",
            self.op_profile,
            self.metrics,
            self.wall_micros,
            self.max_qerror(),
            self.metrics.total_work(),
        )
    }

    /// Render the result set one value per line (deterministic order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.values {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

/// A TM database: catalog + query pipeline.
///
/// [`Database::new`] is fully in-memory (exactly the pre-storage-tier
/// behavior); [`Database::open`] is **disk-backed** — tables live in
/// slotted pages behind a fixed-capacity buffer pool, the catalog
/// (schemas, rows, statistics) persists across processes, and scans
/// stream pages on demand, so the database can exceed the pool — and
/// RAM.
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    obs: DbObs,
}

/// Upper bucket bounds (microseconds) of the `tmql_query_wall_micros`
/// latency histogram: 100µs to 5s, roughly half-decade steps.
const QUERY_LATENCY_BOUNDS_MICROS: &[u64] = &[
    100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000,
];

/// Per-database observability state: the engine-wide metrics registry
/// plus the facade's own instruments and the (optional) query log.
#[derive(Debug)]
struct DbObs {
    registry: MetricsRegistry,
    queries: Counter,
    query_errors: Counter,
    txn_commits: Counter,
    txn_rollbacks: Counter,
    query_wall_micros: Histogram,
    exec: MetricsRecorder,
    query_log: Option<QueryLog>,
    slow_micros: Option<u64>,
}

impl Default for DbObs {
    fn default() -> Self {
        let registry = MetricsRegistry::new();
        let queries = registry.counter("tmql_queries_total", "Statements executed successfully");
        let query_errors = registry.counter(
            "tmql_query_errors_total",
            "Statements that failed (parse, type, translate, or execution error)",
        );
        let txn_commits = registry.counter("tmql_txn_commits_total", "Transactions committed");
        let txn_rollbacks =
            registry.counter("tmql_txn_rollbacks_total", "Transactions rolled back");
        let query_wall_micros = registry.histogram(
            "tmql_query_wall_micros",
            "Whole-statement wall-clock latency in microseconds",
            QUERY_LATENCY_BOUNDS_MICROS,
        );
        let exec = MetricsRecorder::register(&registry);
        DbObs {
            registry,
            queries,
            query_errors,
            txn_commits,
            txn_rollbacks,
            query_wall_micros,
            exec,
            query_log: QueryLog::from_env(),
            slow_micros: tmql_obs::log::slow_query_micros_from_env(),
        }
    }
}

/// Default buffer-pool capacity of [`Database::open`], in 8 KiB pages
/// (re-exported from the storage tier).
pub const DEFAULT_POOL_PAGES: usize = tmql_storage::DEFAULT_POOL_PAGES;

/// Buffer-pool capacity [`Database::open`] actually uses: the
/// `TMQL_TEST_POOL_PAGES` environment variable when set to a positive
/// integer, else [`DEFAULT_POOL_PAGES`]. The variable is a test/CI hook —
/// exporting e.g. `TMQL_TEST_POOL_PAGES=4` runs every suite that opens a
/// database through `Database::open` under a four-page pool, shaking out
/// eviction and refault bugs that a comfortably sized pool would hide.
/// Invalid or zero values fall back to the default.
pub fn default_pool_pages() -> usize {
    std::env::var("TMQL_TEST_POOL_PAGES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_POOL_PAGES)
}

/// Adapter exposing the catalog's row types to the language type checker.
struct CatalogTypes<'a>(&'a Catalog);

impl tmql_algebra::typing::TableTypes for CatalogTypes<'_> {
    fn row_ty(&self, table: &str) -> tmql_model::Result<Ty> {
        self.0.row_ty(table)
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// A database over an existing catalog (e.g. from `tmql-workload`).
    pub fn from_catalog(catalog: Catalog) -> Database {
        let obs = DbObs::default();
        // Storage contributes its polled series (pool, WAL, free list) —
        // a no-op for transient catalogs.
        catalog.register_metrics(&obs.registry);
        if let Some(report) = catalog.recovery() {
            obs.registry
                .gauge(
                    "tmql_recovery_replayed_txns",
                    "Committed transactions replayed from the WAL at open",
                )
                .set(report.replayed_txns as u64);
            obs.registry
                .gauge(
                    "tmql_recovery_discarded_records",
                    "Torn or uncommitted WAL records discarded at open",
                )
                .set(report.discarded_records as u64);
            obs.registry
                .gauge(
                    "tmql_recovery_discarded_bytes",
                    "WAL bytes discarded at open",
                )
                .set(report.discarded_bytes);
        }
        Database { catalog, obs }
    }

    /// Open (or create) a **disk-backed** database at `path` with the
    /// default buffer pool ([`DEFAULT_POOL_PAGES`] pages). Registered
    /// tables are written into pages and committed durably, so the whole
    /// database — schemas, rows, statistics — survives a close/reopen:
    ///
    /// ```
    /// use tmql::Database;
    /// use tmql_storage::table::int_table;
    ///
    /// let path = std::env::temp_dir().join(format!("doc-open-{}.tmdb", std::process::id()));
    /// # let _ = std::fs::remove_file(&path);
    /// {
    ///     let mut db = Database::open(&path).unwrap();
    ///     db.register_table(int_table("X", &["a"], &[&[1], &[2]])).unwrap();
    /// } // dropped: nothing of the database is left in memory
    /// let db = Database::open(&path).unwrap();
    /// let r = db.query("SELECT x.a FROM X x").unwrap();
    /// assert_eq!(r.len(), 2);
    /// assert!(r.metrics.pool_hits + r.metrics.pool_misses > 0, "the scan went through the pool");
    /// # let _ = std::fs::remove_file(&path);
    /// ```
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Database, TmqlError> {
        Database::open_with(path, default_pool_pages())
    }

    /// [`Database::open`] with an explicit buffer-pool capacity in pages.
    /// A pool smaller than the data is the point: scans stream and evict,
    /// so workloads larger than memory run in bounded space (cold pages
    /// simply fault back in, visible as [`Metrics::pool_misses`]).
    pub fn open_with(
        path: impl AsRef<std::path::Path>,
        pool_pages: usize,
    ) -> Result<Database, TmqlError> {
        Ok(Database::from_catalog(Catalog::open(path, pool_pages)?))
    }

    /// True iff this database writes through to a paged store on disk.
    pub fn is_persistent(&self) -> bool {
        self.catalog.is_persistent()
    }

    /// Copy this database (schema and every table) into a **new**
    /// disk-backed database at `path` and return it. The source is
    /// untouched; the copy is immediately durable. The target must not
    /// exist — persisting over an existing database would merge with
    /// (and partially clobber) its contents rather than copy.
    pub fn persist_to(
        &self,
        path: impl AsRef<std::path::Path>,
        pool_pages: usize,
    ) -> Result<Database, TmqlError> {
        let path = path.as_ref();
        if path.exists() {
            return Err(TmqlError::Model(tmql_model::ModelError::Io(format!(
                "persist target `{}` already exists; choose a fresh path (or delete it first)",
                path.display()
            ))));
        }
        let mut catalog = Catalog::open(path, pool_pages)?;
        *catalog.schema_mut() = self.catalog.schema().clone();
        let names: Vec<String> = self.catalog.table_names().map(str::to_string).collect();
        for name in names {
            let table = self.catalog.table(&name)?;
            catalog.replace(table.clone())?;
        }
        // Secondary indexes travel with the data: rebuild each one in the
        // copy so index-aware plans work identically on the persisted side.
        let specs: Vec<(String, String)> = self
            .catalog
            .indexes()
            .map(|(t, a, _)| (t.to_string(), a.to_string()))
            .collect();
        for (table, attr) in specs {
            catalog.create_index(&table, &attr)?;
        }
        catalog.sync()?;
        Ok(Database::from_catalog(catalog))
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (schema registration, table replacement).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Register a table as a class extension.
    pub fn register_table(&mut self, table: Table) -> Result<(), TmqlError> {
        self.catalog.register(table).map_err(TmqlError::from)
    }

    /// Create a secondary (ordered) index on `table.attr`. From then on
    /// the planner probes it instead of scanning whenever the cost model
    /// says a probe is cheaper — equality and range selections, and joins
    /// whose inner side is an indexed scan. On a disk-backed database the
    /// index persists and survives a reopen.
    ///
    /// ```
    /// use tmql::Database;
    /// use tmql_storage::table::int_table;
    ///
    /// let mut db = Database::new();
    /// let rows: Vec<Vec<i64>> = (0..200).map(|i| vec![i, i % 20]).collect();
    /// let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    /// db.register_table(int_table("X", &["a", "b"], &refs)).unwrap();
    /// db.create_index("X", "b").unwrap();
    ///
    /// let r = db.query("SELECT x.a FROM X x WHERE x.b = 3").unwrap();
    /// assert_eq!(r.len(), 10);
    /// assert!(r.metrics.index_probes > 0, "selection ran as an index probe");
    /// assert_eq!(r.metrics.rows_scanned, 0, "no full scan of X");
    /// assert!(db.explain("SELECT x.a FROM X x WHERE x.b = 3").unwrap()
    ///     .contains("IndexScan(X.b)"));
    /// ```
    pub fn create_index(&mut self, table: &str, attr: &str) -> Result<(), TmqlError> {
        self.catalog
            .create_index(table, attr)
            .map_err(TmqlError::from)
    }

    /// Drop the index on `table.attr`, returning whether one existed.
    pub fn drop_index(&mut self, table: &str, attr: &str) -> Result<bool, TmqlError> {
        self.catalog
            .drop_index(table, attr)
            .map_err(TmqlError::from)
    }

    /// All secondary indexes as `(table, attr, entries)` sorted by table
    /// then attribute, where `entries` is the number of indexed rows.
    pub fn indexes(&self) -> Vec<(String, String, usize)> {
        self.catalog
            .indexes()
            .map(|(t, a, ix)| (t.to_string(), a.to_string(), ix.len()))
            .collect()
    }

    /// Open a multi-statement transaction (`BEGIN`). Every
    /// [`Database::register_table`], [`Database::create_index`], and
    /// [`Database::drop_index`] until the matching [`Database::commit`]
    /// becomes one atomic unit: on a disk-backed database they reach the
    /// write-ahead log as a single commit record behind one `fsync`, so
    /// either all of them survive a crash or none do.
    /// [`Database::rollback`] — or a failing statement, or dropping the
    /// database mid-transaction — discards the whole group. Without an
    /// explicit transaction each statement auto-commits by itself.
    /// Nested transactions are an error.
    ///
    /// ```
    /// use tmql::Database;
    /// use tmql_storage::table::int_table;
    ///
    /// let path = std::env::temp_dir().join(format!("doc-txn-{}.tmdb", std::process::id()));
    /// # let _ = std::fs::remove_file(&path);
    /// # let _ = std::fs::remove_file({ let mut w = path.clone().into_os_string(); w.push(".wal"); std::path::PathBuf::from(w) });
    /// let mut db = Database::open(&path).unwrap();
    /// db.begin().unwrap();
    /// db.register_table(int_table("X", &["a"], &[&[1]])).unwrap();
    /// db.register_table(int_table("Y", &["b"], &[&[2]])).unwrap();
    /// assert!(db.in_transaction());
    /// db.commit().unwrap(); // X and Y become durable together
    ///
    /// db.begin().unwrap();
    /// db.register_table(int_table("Z", &["c"], &[&[3]])).unwrap();
    /// db.rollback().unwrap(); // Z never happened
    ///
    /// let db = Database::open(&path).unwrap();
    /// assert!(db.query("SELECT x.a FROM X x").is_ok());
    /// assert!(db.query("SELECT z.c FROM Z z").is_err());
    /// # let _ = std::fs::remove_file(&path);
    /// # let _ = std::fs::remove_file({ let mut w = path.clone().into_os_string(); w.push(".wal"); std::path::PathBuf::from(w) });
    /// ```
    pub fn begin(&mut self) -> Result<(), TmqlError> {
        self.catalog.begin().map_err(TmqlError::from)
    }

    /// Commit the open transaction: every statement since
    /// [`Database::begin`] becomes durable atomically. On failure the
    /// transaction is rolled back and the error returned.
    pub fn commit(&mut self) -> Result<(), TmqlError> {
        let r = self.catalog.commit().map_err(TmqlError::from);
        if r.is_ok() {
            self.obs.txn_commits.inc();
        }
        r
    }

    /// Abandon the open transaction, restoring the database to its
    /// [`Database::begin`] state and reclaiming the pages it wrote.
    pub fn rollback(&mut self) -> Result<(), TmqlError> {
        let r = self.catalog.rollback().map_err(TmqlError::from);
        if r.is_ok() {
            self.obs.txn_rollbacks.inc();
        }
        r
    }

    /// Whether a [`Database::begin`] transaction is currently open.
    pub fn in_transaction(&self) -> bool {
        self.catalog.in_transaction()
    }

    /// Force a WAL checkpoint: flush dirty pages, rewrite the header,
    /// truncate the log, and release replaced pages for reuse. No-op on
    /// an in-memory database; an error while a transaction is open.
    /// Checkpoints also happen automatically once the log exceeds its
    /// threshold (see [`Database::set_wal_checkpoint_bytes`]) and when
    /// the database is dropped.
    pub fn wal_checkpoint(&self) -> Result<(), TmqlError> {
        self.catalog.wal_checkpoint().map_err(TmqlError::from)
    }

    /// Override the WAL-size threshold beyond which a commit triggers an
    /// automatic checkpoint (default
    /// [`tmql_storage::pager::DEFAULT_WAL_CHECKPOINT_BYTES`], overridable
    /// globally via the `TMQL_WAL_CHECKPOINT_BYTES` environment
    /// variable). `u64::MAX` disables automatic checkpoints; `1` forces
    /// one after every commit. No-op on an in-memory database.
    pub fn set_wal_checkpoint_bytes(&self, bytes: u64) {
        self.catalog.set_wal_checkpoint_bytes(bytes);
    }

    /// What crash recovery found when this database was opened: replayed
    /// transactions and any discarded (torn or corrupt) log records.
    /// `None` for in-memory databases;
    /// [`RecoveryReport::is_clean`] for the common nothing-happened case.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.catalog.recovery()
    }

    /// Run a query with default options.
    pub fn query(&self, src: &str) -> Result<QueryResult, TmqlError> {
        self.query_with(src, QueryOptions::default())
    }

    /// Run a query with explicit options.
    ///
    /// With a memory budget, pipeline breakers spill to disk instead of
    /// growing past it — same results, bounded residency:
    ///
    /// ```
    /// use tmql::{Database, QueryOptions};
    /// use tmql_storage::table::int_table;
    ///
    /// let mut db = Database::new();
    /// let rows: Vec<Vec<i64>> = (0..256).map(|i| vec![i, i % 8]).collect();
    /// let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    /// db.register_table(int_table("X", &["n", "b"], &refs)).unwrap();
    /// db.register_table(int_table("Y", &["a", "b"], &refs)).unwrap();
    ///
    /// let q = "SELECT x.b FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)";
    /// let free = db.query(q).unwrap();
    /// let tight = db.query_with(q, QueryOptions::default().memory_budget(32)).unwrap();
    /// assert_eq!(free.values, tight.values);
    /// assert_eq!(free.metrics.rows_spilled, 0);
    /// assert!(tight.metrics.rows_spilled > 0, "the 256-row build side spilled");
    /// assert!(tight.metrics.peak_resident_rows < free.metrics.peak_resident_rows);
    /// ```
    pub fn query_with(&self, src: &str, opts: QueryOptions) -> Result<QueryResult, TmqlError> {
        let start = Instant::now();
        let wal_before = self.catalog.wal_activity().unwrap_or_default();
        match self.run_pipeline(src, opts) {
            Ok(mut result) => {
                result.wall_micros = start.elapsed().as_micros() as u64;
                self.observe_query(src, opts, &result, &wal_before);
                Ok(result)
            }
            Err(e) => {
                self.obs.query_errors.inc();
                Err(e)
            }
        }
    }

    /// The uninstrumented parse→plan→execute pipeline behind
    /// [`Database::query_with`].
    fn run_pipeline(&self, src: &str, opts: QueryOptions) -> Result<QueryResult, TmqlError> {
        let (translated, optimized) = self.plan_with(src, opts)?;
        let config = opts.exec_config();
        let phys = tmql_exec::lower(&optimized, &self.catalog, &config)?;
        // Estimated rows per executed operator (same pre-order as the
        // operator tree), so profiles show estimated vs. actual.
        let est = Estimator::new(&self.catalog).exec_order_rows_phys(&phys);
        let mut ctx = tmql_exec::ExecContext::with_config(&self.catalog, &config);
        let (rows, ops) =
            tmql_exec::execute_collect(&phys, &mut ctx, &tmql_algebra::Env::new(), Some(&est))?;
        let values = rows.iter().map(Plan::row_output_value).collect();
        let op_profile = tmql_exec::op::operator::render_profile(&ops);
        Ok(QueryResult {
            values,
            translated,
            optimized,
            metrics: ctx.metrics,
            op_profile,
            ops,
            wall_micros: 0,
        })
    }

    /// Fold one finished statement into the registry and (when
    /// configured) append its query-log record.
    fn observe_query(
        &self,
        src: &str,
        opts: QueryOptions,
        result: &QueryResult,
        wal_before: &WalActivity,
    ) {
        self.obs.queries.inc();
        self.obs.query_wall_micros.observe(result.wall_micros);
        self.obs.exec.record(&result.metrics);
        let Some(log) = &self.obs.query_log else {
            return;
        };
        if !opts.query_log {
            return;
        }
        let wal_after = self.catalog.wal_activity().unwrap_or_default();
        let est_root = result.ops.first().and_then(|o| o.est_rows).unwrap_or(0.0);
        let m = &result.metrics;
        let mut record = ObjectBuilder::new()
            .str(
                "query_hash",
                &format!("{:016x}", tmql_obs::fnv1a(src.as_bytes())),
            )
            .str("strategy", opts.strategy.name())
            .f64("est_rows", est_root)
            .u64("actual_rows", result.len() as u64)
            .f64("max_qerror", result.max_qerror())
            .u64("total_work", m.total_work())
            .u64("wall_micros", result.wall_micros)
            .u64("rows_spilled", m.rows_spilled)
            .u64("pool_hits", m.pool_hits)
            .u64("pool_misses", m.pool_misses)
            .u64(
                "wal_appends",
                wal_after
                    .appends_total
                    .saturating_sub(wal_before.appends_total),
            );
        // Slow-query escalation: offenders get their full EXPLAIN ANALYZE
        // tree embedded (rendered from this run — the query is not rerun).
        if let Some(slow) = self.obs.slow_micros {
            if result.wall_micros >= slow {
                record = record.str("analyze", &result.render_analyze());
            }
        }
        log.append(&record.finish());
    }

    /// `EXPLAIN ANALYZE` with default options — see
    /// [`Database::analyze_with`].
    pub fn analyze(&self, src: &str) -> Result<String, TmqlError> {
        self.analyze_with(src, QueryOptions::default())
    }

    /// `EXPLAIN ANALYZE`: **run** the query, then render the executed
    /// operator tree with estimated vs. actual rows, per-operator
    /// inclusive wall-clock time, spilled rows, and the run's work
    /// counters (pool, index, spill, WAL-adjacent). The shell exposes
    /// this as `ANALYZE <query>`.
    ///
    /// ```
    /// use tmql::Database;
    /// use tmql_storage::table::int_table;
    ///
    /// let mut db = Database::new();
    /// db.register_table(int_table("X", &["a"], &[&[1], &[2]])).unwrap();
    /// let report = db.analyze("SELECT x.a FROM X x").unwrap();
    /// assert!(report.contains("Scan(X) [rows=2 est=2"), "{report}");
    /// assert!(report.contains("time="), "{report}");
    /// assert!(report.contains("max_qerror="), "{report}");
    /// ```
    pub fn analyze_with(&self, src: &str, opts: QueryOptions) -> Result<String, TmqlError> {
        // Timing is the point of ANALYZE: force collection on even if the
        // caller's options disabled it.
        let result = self.query_with(src, opts.collect_timing(true))?;
        Ok(result.render_analyze())
    }

    /// Render every registered metric in Prometheus text exposition
    /// format: engine-wide counters/gauges/histograms from storage
    /// (`tmql_pool_*`, `tmql_wal_*`), the executor (`tmql_exec_*`), and
    /// the facade (`tmql_queries_total`, `tmql_query_wall_micros`,
    /// `tmql_txn_*`, `tmql_recovery_*`). The shell exposes this as
    /// `\metrics`.
    ///
    /// ```
    /// use tmql::Database;
    /// use tmql_storage::table::int_table;
    ///
    /// let mut db = Database::new();
    /// db.register_table(int_table("X", &["a"], &[&[7]])).unwrap();
    /// db.query("SELECT x.a FROM X x").unwrap();
    /// let text = db.metrics_text();
    /// assert!(text.contains("tmql_queries_total 1\n"), "{text}");
    /// assert!(text.contains("tmql_exec_rows_scanned_total"), "{text}");
    /// assert!(text.contains("tmql_query_wall_micros_count 1\n"), "{text}");
    /// ```
    pub fn metrics_text(&self) -> String {
        self.obs.registry.render()
    }

    /// The engine-wide metrics registry backing
    /// [`Database::metrics_text`] — callers may register their own
    /// series alongside the engine's.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.obs.registry
    }

    /// The path of the active query log (set via `TMQL_QUERY_LOG` when
    /// the database was created, or [`Database::set_query_log`]), if any.
    pub fn query_log_path(&self) -> Option<&std::path::Path> {
        self.obs.query_log.as_ref().map(QueryLog::path)
    }

    /// Attach (or replace) the query log programmatically — the
    /// environment-independent alternative to `TMQL_QUERY_LOG`.
    pub fn set_query_log(&mut self, log: QueryLog) {
        self.obs.query_log = Some(log);
    }

    /// Set (or clear) the slow-query threshold: statements at or above
    /// `micros` get their full `EXPLAIN ANALYZE` tree embedded in their
    /// query-log record. The environment-independent alternative to
    /// `TMQL_SLOW_QUERY_MICROS`.
    pub fn set_slow_query_micros(&mut self, micros: Option<u64>) {
        self.obs.slow_micros = micros;
    }

    /// Produce the translated and optimized logical plans without
    /// executing.
    pub fn plan_with(&self, src: &str, opts: QueryOptions) -> Result<(Plan, Plan), TmqlError> {
        let ast = tmql_lang::parse_query(src)?;
        if opts.typecheck {
            tmql_lang::check_query(&ast, &CatalogTypes(&self.catalog))?;
        }
        let extensions: BTreeSet<String> = self.catalog.table_names().map(str::to_string).collect();
        let translated = tmql_translate::translate_query(&ast, &extensions)?;
        let optimizer = tmql_core::Optimizer {
            strategy: opts.strategy,
            apply_rules: opts.apply_rules,
        };
        // Storage statistics flow into strategy choice here: the
        // estimator-backed cost model ranks CostBased candidates. The
        // memory budget flows in too, so under tight memory the model
        // charges spill I/O to plans with oversized breaker state.
        let model = EstimatorCostModel(
            Estimator::with_budget(&self.catalog, opts.memory_budget_rows)
                .with_threads(opts.threads),
        );
        let optimized = optimizer.optimize_with(translated.clone(), Some(&model));
        Ok((translated, optimized))
    }

    /// `EXPLAIN`: the translated plan, the optimized logical plan, and the
    /// physical plan, as one printable report.
    pub fn explain(&self, src: &str) -> Result<String, TmqlError> {
        self.explain_with(src, QueryOptions::default())
    }

    /// `EXPLAIN` under explicit options (plans only, does not execute).
    /// The optimized and physical sections carry the cost model's
    /// estimated rows per operator.
    pub fn explain_with(&self, src: &str, opts: QueryOptions) -> Result<String, TmqlError> {
        let (translated, optimized) = self.plan_with(src, opts)?;
        let config = opts.exec_config();
        let phys = tmql_exec::lower(&optimized, &self.catalog, &config)?;
        let est = Estimator::new(&self.catalog);
        let annotated = tmql_algebra::pretty::explain_annotated(&optimized, &mut |node| {
            Some(format!(
                "est_rows={}",
                tmql_exec::cost::format_rows(est.rows(node))
            ))
        });
        Ok(format!(
            "== translated (nested-loop semantics) ==\n{}\
             == optimized ({}) ==\n{}\
             == physical ==\n{}",
            tmql_algebra::pretty::explain(&translated),
            opts.strategy.name(),
            annotated,
            tmql_exec::cost::explain_with_estimates(&phys, &self.catalog),
        ))
    }

    /// `EXPLAIN ANALYZE`: the full [`Database::explain_with`] report plus
    /// the **executed** operator tree with per-operator emitted
    /// rows/batches and the run's work counters. This runs the query.
    pub fn profile_with(&self, src: &str, opts: QueryOptions) -> Result<String, TmqlError> {
        let explain = self.explain_with(src, opts)?;
        let result = self.query_with(src, opts)?;
        Ok(format!(
            "{explain}== operators (executed, batch_size={}) ==\n{}-- {}\n",
            opts.batch_size, result.op_profile, result.metrics,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_storage::table::int_table;

    fn db() -> Database {
        let mut db = Database::new();
        db.register_table(int_table("X", &["a", "b"], &[&[1, 1], &[2, 1], &[3, 9]]))
            .unwrap();
        db.register_table(int_table("Y", &["b", "c"], &[&[1, 10], &[1, 11]]))
            .unwrap();
        db
    }

    #[test]
    fn end_to_end_flat_query() {
        let r = db().query("SELECT x.a FROM X x WHERE x.b = 1").unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.values.contains(&Value::Int(1)));
    }

    #[test]
    fn end_to_end_nested_query_all_strategies_agree() {
        let db = db();
        let q = "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c - 9 FROM Y y WHERE x.b = y.b)";
        let base = db
            .query_with(
                q,
                QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
            )
            .unwrap();
        for strat in UnnestStrategy::ALL {
            if strat.is_bug_compatible() {
                continue;
            }
            let r = db
                .query_with(q, QueryOptions::default().strategy(strat))
                .unwrap();
            assert_eq!(r.values, base.values, "strategy {}", strat.name());
        }
    }

    #[test]
    fn explain_mentions_all_layers() {
        let s = db()
            .explain("SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE x.b = y.b)")
            .unwrap();
        assert!(s.contains("translated"), "{s}");
        assert!(s.contains("Apply"), "{s}");
        assert!(s.contains("semijoin"), "{s}");
        assert!(s.contains("HashJoin") || s.contains("MergeJoin"), "{s}");
    }

    #[test]
    fn type_errors_surface() {
        let err = db().query("SELECT x.zz FROM X x").unwrap_err();
        assert!(matches!(err, TmqlError::Type(_)));
        let err = db().query("SELECT x FROM").unwrap_err();
        assert!(matches!(err, TmqlError::Parse(_)));
        let err = db().query("SELECT w FROM W w").unwrap_err();
        assert!(matches!(err, TmqlError::Type(_)));
    }

    #[test]
    fn metrics_populated() {
        let r = db().query("SELECT x FROM X x").unwrap();
        assert!(r.metrics.rows_scanned >= 3);
        assert!(r.metrics.batches_emitted >= 1);
        assert!(!r.render().is_empty());
    }

    #[test]
    fn profile_shows_executed_operator_tree() {
        let s = db()
            .profile_with(
                "SELECT x.a FROM X x WHERE x.b = 1",
                QueryOptions::default().batch_size(2),
            )
            .unwrap();
        assert!(
            s.contains("== operators (executed, batch_size=2) =="),
            "{s}"
        );
        assert!(s.contains("Scan(X) [rows=3"), "{s}");
        assert!(s.contains("scanned=3"), "{s}");
    }

    #[test]
    fn index_lifecycle_through_facade() {
        let mut db = Database::new();
        let rows: Vec<Vec<i64>> = (0..100).map(|i| vec![i, i % 10]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        db.register_table(int_table("Z", &["a", "b"], &refs))
            .unwrap();
        db.create_index("Z", "b").unwrap();
        assert_eq!(db.indexes(), vec![("Z".to_string(), "b".to_string(), 100)]);

        let q = "SELECT z.a FROM Z z WHERE z.b = 7";
        let probed = db.query(q).unwrap();
        assert!(probed.metrics.index_probes > 0, "{}", probed.metrics);
        let explain = db.explain(q).unwrap();
        assert!(explain.contains("IndexScan(Z.b)"), "{explain}");
        assert!(explain.contains("est_rows="), "{explain}");

        assert!(db.drop_index("Z", "b").unwrap());
        assert!(!db.drop_index("Z", "b").unwrap());
        let scanned = db.query(q).unwrap();
        assert_eq!(scanned.values, probed.values);
        assert_eq!(scanned.metrics.index_probes, 0);
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let db = db();
        let q = "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c - 9 FROM Y y WHERE x.b = y.b)";
        let base = db.query_with(q, QueryOptions::default()).unwrap();
        for bs in [1, 2, 7] {
            let r = db
                .query_with(q, QueryOptions::default().batch_size(bs))
                .unwrap();
            assert_eq!(r.values, base.values, "batch_size {bs}");
            assert_eq!(
                r.metrics.rows_scanned, base.metrics.rows_scanned,
                "batch_size {bs}"
            );
        }
    }
}
