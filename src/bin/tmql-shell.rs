//! `tmql-shell` — an interactive shell over the tmql engine.
//!
//! ```sh
//! cargo run --bin tmql-shell
//! tmql> \load company
//! tmql> SELECT d.name FROM DEPT d
//! tmql> \strategy kim
//! tmql> \explain SELECT x FROM R x WHERE x.b = COUNT((SELECT y.d FROM S y WHERE x.c = y.c))
//! ```
//!
//! Meta commands start with `\`; anything else is executed as a TM query
//! against the loaded catalog under the current strategy/algorithm.

use std::io::{self, BufRead, Write};

use tmql::{Database, JoinAlgo, QueryOptions, UnnestStrategy};
use tmql_workload::gen::{gen_company, gen_rs, gen_xy, gen_xyz, GenConfig};
use tmql_workload::schemas;

struct Shell {
    db: Database,
    opts: QueryOptions,
}

const HELP: &str = "\
meta commands:
  \\load <ds> [n]     load a dataset: table1 | countbug | company | section8
                     or generated: rs | xy | xyz | gencompany  (size n, default 1000)
  \\open <path> [p]   open (or create) a disk-backed database at <path>
                     with a buffer pool of p pages (default 256); queries
                     stream pages through the pool
  \\persist <path>    copy the current catalog into a new disk-backed
                     database at <path> and switch to it
  \\tables            list loaded tables with row counts
  \\index create <table> <attr>   build a secondary index (persists on
                     disk-backed databases; the planner probes it when
                     cheaper than scanning)
  \\index drop <table> <attr>     drop a secondary index
  \\index list        list secondary indexes with entry counts
  \\strategy [name]   show or set the unnesting strategy:
                     nested-loop | kim | ganski-wong | muralikrishna |
                     nest-join | semi-anti | optimal | cost-based
  \\algo [name]       show or set the join algorithm: auto | nl | hash | merge
  \\set <opt> <val>   set a session option:
                     batch_size <rows> | memory_budget <rows|off> |
                     threads <n|auto> | strategy <name> | algo <name> |
                     rules <on|off> | typecheck <on|off>
  \\show              list the current session options
  \\explain <query>   show translated / optimized / physical plans (est_rows per operator)
  \\profile <query>   run the query; explain + executed operator tree
                     with estimated vs actual rows per operator (and
                     spilled rows when a memory_budget forces spilling)
  \\strategies <q>    run <q> under every strategy, compare row counts
  \\metrics           engine-wide metrics (Prometheus text): pool, WAL,
                     executor work counters, query latency histogram
  \\stats             storage snapshot: pool hit rate + per-table
                     residency, WAL size/records, free list, recovery
  \\help              this text
  \\quit              exit
transaction statements (grouping registrations and \\index changes into
one atomic unit — durable as a single WAL commit on disk-backed
databases; each statement auto-commits otherwise):
  BEGIN | COMMIT | ROLLBACK
ANALYZE <query> runs the query and prints the executed operator tree
with est vs actual rows, per-operator wall time, and work counters;
anything else is executed as a TM query, e.g.
  SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)";

fn main() {
    let mut shell = Shell {
        db: Database::from_catalog(schemas::company_catalog()),
        opts: QueryOptions::default(),
    };
    println!("tmql — nested query optimization in a complex object model (EDBT '94)");
    println!("loaded dataset `company`; \\help for commands");
    let stdin = io::stdin();
    loop {
        print!("tmql> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('\\') {
            if !shell.meta(rest) {
                break;
            }
        } else if let Some(stmt) = parse_txn_statement(line) {
            shell.txn(stmt);
        } else if let Some(query) = parse_analyze_statement(line) {
            shell.analyze(query);
        } else {
            shell.run_query(line);
        }
    }
    println!("bye");
}

/// The three bare transaction statements, recognized case-insensitively
/// with an optional trailing `;` (so `begin;` works like `BEGIN`).
#[derive(Debug, Clone, Copy)]
enum TxnStatement {
    Begin,
    Commit,
    Rollback,
}

/// `ANALYZE <query>`, recognized case-insensitively like the bare
/// transaction statements; returns the query text.
fn parse_analyze_statement(line: &str) -> Option<&str> {
    let line = line.trim();
    let head = line.split_whitespace().next()?;
    if !head.eq_ignore_ascii_case("analyze") {
        return None;
    }
    let query = line[head.len()..].trim();
    if query.is_empty() {
        None
    } else {
        Some(query)
    }
}

fn parse_txn_statement(line: &str) -> Option<TxnStatement> {
    let word = line.trim().trim_end_matches(';').trim();
    if word.eq_ignore_ascii_case("begin") {
        Some(TxnStatement::Begin)
    } else if word.eq_ignore_ascii_case("commit") {
        Some(TxnStatement::Commit)
    } else if word.eq_ignore_ascii_case("rollback") {
        Some(TxnStatement::Rollback)
    } else {
        None
    }
}

impl Shell {
    /// Handle a meta command; returns false to exit the shell.
    fn meta(&mut self, cmd: &str) -> bool {
        let (head, rest) = match cmd.split_once(char::is_whitespace) {
            Some((h, r)) => (h, r.trim()),
            None => (cmd, ""),
        };
        match head {
            "quit" | "q" | "exit" => return false,
            "help" | "h" | "?" => println!("{HELP}"),
            "load" => self.load(rest),
            "open" => self.open(rest),
            "persist" => self.persist(rest),
            "tables" => {
                for name in self.db.catalog().table_names() {
                    let n = self.db.catalog().table(name).map(|t| t.len()).unwrap_or(0);
                    println!("  {name} ({n} rows)");
                }
            }
            "index" => self.index(rest),
            "strategy" if rest.is_empty() => {
                println!("strategy: {}", self.opts.strategy.name())
            }
            "strategy" => self.set_option(&format!("strategy {rest}")),
            "algo" if rest.is_empty() => println!("algo: {:?}", self.opts.join_algo),
            "algo" => self.set_option(&format!("algo {rest}")),
            "set" => self.set_option(rest),
            "show" => self.show_options(),
            "explain" => match self.db.explain_with(rest, self.opts) {
                Ok(s) => println!("{s}"),
                Err(e) => println!("error: {e}"),
            },
            "profile" => match self.db.profile_with(rest, self.opts) {
                Ok(s) => println!("{s}"),
                Err(e) => println!("error: {e}"),
            },
            "strategies" => self.compare_strategies(rest),
            "metrics" => print!("{}", self.db.metrics_text()),
            "stats" => self.stats(),
            other => println!("unknown command `\\{other}`; \\help for the list"),
        }
        true
    }

    /// `BEGIN` / `COMMIT` / `ROLLBACK`: multi-statement transactions.
    fn txn(&mut self, stmt: TxnStatement) {
        let result = match stmt {
            TxnStatement::Begin => self.db.begin().map(|()| {
                "transaction open; statements group until COMMIT (ROLLBACK discards them)"
            }),
            TxnStatement::Commit => self
                .db
                .commit()
                .map(|()| "committed: the transaction's statements are now one durable unit"),
            TxnStatement::Rollback => self
                .db
                .rollback()
                .map(|()| "rolled back: the transaction's statements are discarded"),
        };
        match result {
            Ok(msg) => println!("{msg}"),
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\index create|drop|list`: manage secondary indexes.
    fn index(&mut self, spec: &str) {
        let parts: Vec<&str> = spec.split_whitespace().collect();
        match parts.as_slice() {
            ["create", table, attr] => match self.db.create_index(table, attr) {
                Ok(()) => println!("index on {table}.{attr} built"),
                Err(e) => println!("error: {e}"),
            },
            ["drop", table, attr] => match self.db.drop_index(table, attr) {
                Ok(true) => println!("index on {table}.{attr} dropped"),
                Ok(false) => println!("no index on {table}.{attr}"),
                Err(e) => println!("error: {e}"),
            },
            ["list"] | [] => {
                let indexes = self.db.indexes();
                if indexes.is_empty() {
                    println!("no indexes; \\index create <table> <attr> builds one");
                }
                for (table, attr, entries) in indexes {
                    println!("  {table}.{attr} ({entries} entries)");
                }
            }
            _ => println!("usage: \\index create <table> <attr> | drop <table> <attr> | list"),
        }
    }

    /// `\set <option> <value>`: mutate one session [`QueryOptions`] knob.
    fn set_option(&mut self, spec: &str) {
        let (key, val) = match spec.split_once(char::is_whitespace) {
            Some((k, v)) => (k, v.trim()),
            None => (spec, ""),
        };
        match key {
            "batch_size" => match val.parse::<usize>() {
                Ok(n) => {
                    self.opts = self.opts.batch_size(n);
                    println!("batch_size: {}", self.opts.batch_size);
                }
                Err(_) => println!("usage: \\set batch_size <rows>"),
            },
            "memory_budget" => match val {
                "off" | "none" | "unbounded" => {
                    self.opts.memory_budget_rows = None;
                    println!("memory_budget: unbounded");
                }
                _ => match val.parse::<usize>() {
                    Ok(n) => {
                        self.opts = self.opts.memory_budget(n);
                        println!(
                            "memory_budget: {} rows (breakers spill past this)",
                            self.opts.memory_budget_rows.expect("just set")
                        );
                    }
                    Err(_) => println!("usage: \\set memory_budget <rows|off>"),
                },
            },
            "threads" => match val {
                "auto" => {
                    self.opts = self.opts.threads(tmql::default_threads());
                    println!("threads: {} (auto)", self.opts.threads);
                }
                _ => match val.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        self.opts = self.opts.threads(n);
                        println!("threads: {}", self.opts.threads);
                    }
                    _ => println!("usage: \\set threads <n|auto>"),
                },
            },
            "strategy" => match parse_strategy(val) {
                Some(s) => {
                    self.opts.strategy = s;
                    println!("strategy: {}", s.name());
                }
                None => println!("unknown strategy `{val}`; \\help for the list"),
            },
            "algo" => match parse_algo(val) {
                Some(a) => {
                    self.opts.join_algo = a;
                    println!("algo: {a:?}");
                }
                None => println!("unknown algorithm `{val}`; \\help for the list"),
            },
            "rules" => match parse_on_off(val) {
                Some(b) => {
                    self.opts.apply_rules = b;
                    println!("rules: {}", if b { "on" } else { "off" });
                }
                None => println!("usage: \\set rules <on|off>"),
            },
            "typecheck" => match parse_on_off(val) {
                Some(b) => {
                    self.opts.typecheck = b;
                    println!("typecheck: {}", if b { "on" } else { "off" });
                }
                None => println!("usage: \\set typecheck <on|off>"),
            },
            "" => println!("usage: \\set <option> <value>; \\show lists the options"),
            other => println!("unknown option `{other}`; \\show lists the options"),
        }
    }

    /// `\show`: print every session option and its current value.
    fn show_options(&self) {
        let on_off = |b: bool| if b { "on" } else { "off" };
        println!(
            "database: {}",
            if self.db.is_persistent() {
                "disk-backed (\\open)"
            } else {
                "in-memory"
            }
        );
        println!(
            "transaction: {}",
            if self.db.in_transaction() {
                "open (COMMIT or ROLLBACK to close)"
            } else {
                "none (statements auto-commit)"
            }
        );
        println!("session options (\\set <option> <value>):");
        println!("  strategy       {}", self.opts.strategy.name());
        println!("  algo           {:?}", self.opts.join_algo);
        println!("  batch_size     {}", self.opts.batch_size);
        match self.opts.memory_budget_rows {
            Some(n) => println!("  memory_budget  {n} rows"),
            None => println!("  memory_budget  unbounded"),
        }
        println!("  threads        {}", self.opts.threads);
        println!("  rules          {}", on_off(self.opts.apply_rules));
        println!("  typecheck      {}", on_off(self.opts.typecheck));
    }

    fn load(&mut self, spec: &str) {
        let mut parts = spec.split_whitespace();
        let name = parts.next().unwrap_or("");
        let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
        let cfg = GenConfig::sized(n);
        let catalog = match name {
            "table1" => Some(schemas::table1_catalog()),
            "countbug" => Some(schemas::count_bug_catalog()),
            "company" => Some(schemas::company_catalog()),
            "section8" => Some(schemas::section8_catalog()),
            "rs" => Some(gen_rs(&cfg)),
            "xy" => Some(gen_xy(&cfg)),
            "xyz" => Some(gen_xyz(&cfg)),
            "gencompany" => Some(gen_company(&GenConfig {
                outer: n / 8,
                inner: n,
                ..GenConfig::default()
            })),
            _ => None,
        };
        match catalog {
            Some(cat) => {
                self.db = Database::from_catalog(cat);
                print!("loaded `{name}`:");
                for t in self.db.catalog().table_names() {
                    let rows = self.db.catalog().table(t).map(|t| t.len()).unwrap_or(0);
                    print!(" {t}({rows})");
                }
                println!();
            }
            None => println!("unknown dataset `{name}`; \\help for the list"),
        }
    }

    /// `\open <path> [pool_pages]`: switch the session to a disk-backed
    /// database (created on first open).
    fn open(&mut self, spec: &str) {
        let mut parts = spec.split_whitespace();
        let Some(path) = parts.next() else {
            println!("usage: \\open <path> [pool_pages]");
            return;
        };
        let pool: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or(tmql::DEFAULT_POOL_PAGES);
        match Database::open_with(path, pool) {
            Ok(db) => {
                self.db = db;
                print!("opened `{path}` (pool {pool} pages):");
                for t in self.db.catalog().table_names() {
                    let rows = self.db.catalog().table(t).map(|t| t.len()).unwrap_or(0);
                    print!(" {t}({rows})");
                }
                println!();
                if let Some(rep) = self.db.recovery_report() {
                    if !rep.is_clean() {
                        println!(
                            "recovery: replayed {} transaction(s); \
                             discarded {} corrupt/torn log record(s) ({} bytes)",
                            rep.replayed_txns, rep.discarded_records, rep.discarded_bytes
                        );
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\persist <path>`: copy the current catalog into a new disk-backed
    /// database and keep working on the copy.
    fn persist(&mut self, spec: &str) {
        let path = spec.trim();
        if path.is_empty() {
            println!("usage: \\persist <path>");
            return;
        }
        match self.db.persist_to(path, tmql::DEFAULT_POOL_PAGES) {
            Ok(db) => {
                self.db = db;
                println!(
                    "persisted {} table(s) to `{path}`; session now disk-backed",
                    self.db.catalog().table_names().count()
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// `ANALYZE <query>`: run it and print the executed operator tree
    /// with est vs actual rows, per-operator wall time, and counters.
    fn analyze(&self, src: &str) {
        match self.db.analyze_with(src, self.opts) {
            Ok(report) => print!("{report}"),
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\stats`: a storage-layer snapshot — buffer pool, WAL, free
    /// list, and what recovery found at open.
    fn stats(&self) {
        match self.db.catalog().pool_stats() {
            Some(p) => {
                println!(
                    "buffer pool: {} hits / {} misses ({:.1}% hit rate), \
                     {} evictions, {} writebacks",
                    p.hits,
                    p.misses,
                    p.hit_rate() * 100.0,
                    p.evictions,
                    p.writebacks
                );
                for name in self.db.catalog().table_names() {
                    if let Some((resident, total)) = self.db.catalog().page_residency(name) {
                        println!("  {name}: {resident}/{total} pages resident");
                    }
                }
            }
            None => println!("buffer pool: n/a (in-memory database; \\open for disk-backed)"),
        }
        match self.db.catalog().wal_activity() {
            Some(w) => {
                println!(
                    "wal: {} bytes, {} record(s) ({} commit(s)) since last checkpoint",
                    w.size_bytes, w.records_since_checkpoint, w.commits_since_checkpoint
                );
                println!(
                    "  lifetime: {} append(s), {} commit(s), {} fsync(s), \
                     {} bytes written, {} checkpoint(s)",
                    w.appends_total,
                    w.commits_total,
                    w.syncs_total,
                    w.bytes_appended_total,
                    w.checkpoints_total
                );
            }
            None => println!("wal: n/a (in-memory database)"),
        }
        if let Some((free, quarantined)) = self.db.catalog().free_list_len() {
            println!("free list: {free} reusable page(s), {quarantined} awaiting checkpoint");
        }
        match self.db.recovery_report() {
            Some(rep) if rep.is_clean() => println!("recovery: clean open (nothing to replay)"),
            Some(rep) => println!(
                "recovery: replayed {} transaction(s), discarded {} record(s) ({} bytes)",
                rep.replayed_txns, rep.discarded_records, rep.discarded_bytes
            ),
            None => println!("recovery: n/a (in-memory database)"),
        }
    }

    fn run_query(&self, src: &str) {
        let start = std::time::Instant::now();
        match self.db.query_with(src, self.opts) {
            Ok(r) => {
                let elapsed = start.elapsed();
                print!("{}", r.render());
                println!(
                    "-- {} rows in {:.2?} [{}; {:?}] {}",
                    r.len(),
                    elapsed,
                    self.opts.strategy.name(),
                    self.opts.join_algo,
                    r.metrics
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }

    fn compare_strategies(&self, src: &str) {
        println!(
            "{:>14} {:>8} {:>12} {:>12}",
            "strategy", "rows", "time", "work"
        );
        let mut oracle: Option<usize> = None;
        for strat in UnnestStrategy::ALL {
            let opts = QueryOptions {
                strategy: strat,
                ..self.opts
            };
            let start = std::time::Instant::now();
            match self.db.query_with(src, opts) {
                Ok(r) => {
                    let t = start.elapsed();
                    if strat == UnnestStrategy::NestedLoop {
                        oracle = Some(r.len());
                    }
                    let flag = match oracle {
                        Some(expect) if r.len() != expect => "  <- differs from oracle!",
                        _ => "",
                    };
                    println!(
                        "{:>14} {:>8} {:>12.2?} {:>12}{}",
                        strat.name(),
                        r.len(),
                        t,
                        r.metrics.total_work(),
                        flag
                    );
                }
                Err(e) => println!("{:>14} error: {e}", strat.name()),
            }
        }
    }
}

fn parse_strategy(s: &str) -> Option<UnnestStrategy> {
    UnnestStrategy::ALL.into_iter().find(|st| st.name() == s)
}

fn parse_on_off(s: &str) -> Option<bool> {
    match s {
        "on" | "true" | "1" => Some(true),
        "off" | "false" | "0" => Some(false),
        _ => None,
    }
}

fn parse_algo(s: &str) -> Option<JoinAlgo> {
    Some(match s {
        "auto" => JoinAlgo::Auto,
        "nl" | "nested-loop" => JoinAlgo::NestedLoop,
        "hash" => JoinAlgo::Hash,
        "merge" | "sort-merge" => JoinAlgo::SortMerge,
        _ => return None,
    })
}
