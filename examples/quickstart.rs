//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Employee/Department database of Section 3.2, reproduces
//! Table 1's nest join, and runs the paper's queries Q1 and Q2 under the
//! Optimal strategy.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tmql::{Database, Plan, QueryOptions, UnnestStrategy};
use tmql_algebra::ScalarExpr as E;
use tmql_exec::{run, ExecConfig};
use tmql_workload::queries::{Q1, Q2};
use tmql_workload::schemas::{company_catalog, table1_catalog};

fn main() {
    // ——— Table 1: the nest join, exactly as printed in the paper ———
    println!("== Table 1: X Δ Y (nest equijoin on the second attribute) ==\n");
    let cat = table1_catalog();
    println!("{}", cat.table("X").unwrap());
    println!("{}", cat.table("Y").unwrap());
    let nest_join = Plan::scan("X", "x").nest_join(
        Plan::scan("Y", "y"),
        E::eq(E::path("x", &["d"]), E::path("y", &["b"])),
        E::var("y"),
        "s",
    );
    let (rows, _) = run(&nest_join, &cat, &ExecConfig::auto()).expect("nest join runs");
    println!("X Δ Y:");
    for r in &rows {
        let x = r.get("x").unwrap().as_tuple().unwrap();
        println!(
            "  e = {}, d = {}, s = {}",
            x.get("e").unwrap(),
            x.get("d").unwrap(),
            r.get("s").unwrap()
        );
    }
    println!("\nNote the dangling tuple (2, 2): its s is ∅ — not NULL, and not lost.\n");

    // ——— The company database and the paper's queries ———
    let db = Database::from_catalog(company_catalog());

    println!("== Q1: departments with an employee living in the same street ==\n{Q1}\n");
    let r = db.query(Q1).expect("Q1 runs");
    println!("result ({} department):\n{}", r.len(), r.render());
    println!(
        "Q1's subquery ranges over the set-valued attribute d.emps, so no\n\
         flattening applies (Section 3.2) — the plan keeps its Apply:\n"
    );
    println!("{}", db.explain(Q1).unwrap());

    println!("== Q2: departments with their same-city employees (nested result) ==\n{Q2}\n");
    let r = db.query(Q2).expect("Q2 runs");
    for v in &r.values {
        let t = v.as_tuple().unwrap();
        println!(
            "  {} -> {} employees",
            t.get("dname").unwrap(),
            t.get("emps").unwrap().as_set().unwrap().len()
        );
    }
    println!();
    let nl = db
        .query_with(
            Q2,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    println!(
        "work: nested loop = {} units, nest join = {} units",
        nl.metrics.total_work(),
        r.metrics.total_work()
    );
    println!("\nOptimized Q2 plan (SELECT-clause nesting → nest join):\n");
    println!("{}", db.explain(Q2).unwrap());
}
