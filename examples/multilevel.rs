//! The Section 8 query processing example: a three-block linear nested
//! query, processed inside-out with nest joins — then the ∈/∉ variant
//! where the nest joins degrade to a semijoin and an antijoin.
//!
//! ```sh
//! cargo run --example multilevel
//! ```

use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_workload::gen::{gen_xyz, GenConfig};
use tmql_workload::queries::{SECTION8, SECTION8_FLAT};
use tmql_workload::schemas::section8_catalog;

fn main() {
    let db = Database::from_catalog(section8_catalog());

    println!("== Section 8: both predicates require grouping (⊆) ==\n{SECTION8}\n");
    println!("{}", db.explain(SECTION8).unwrap());
    let r = db.query(SECTION8).unwrap();
    println!("result ({} rows):\n{}", r.len(), r.render());
    println!(
        "Execution follows the paper's steps: (1) Y Δ Z on y.d = z.d projecting\n\
         z.c, (2) restrict y.c ⊆ zs, (3) X Δ (…) on x.b = y.b projecting y.a,\n\
         (4) restrict x.a ⊆ ys. Dangling tuples at both levels carry ∅.\n"
    );

    println!("== The ∈/∉ variant: Theorem 1 applies ==\n{SECTION8_FLAT}\n");
    println!("{}", db.explain(SECTION8_FLAT).unwrap());
    let r = db.query(SECTION8_FLAT).unwrap();
    println!("result ({} rows):\n{}", r.len(), r.render());

    // Work comparison at a larger scale.
    println!("== Work comparison (generated X/Y/Z, 400/500/500 rows) ==\n");
    let cfg = GenConfig {
        outer: 400,
        inner: 500,
        dangling_fraction: 0.25,
        ..GenConfig::default()
    };
    let big = Database::from_catalog(gen_xyz(&cfg));
    println!(
        "{:<14} {:>14} {:>14}",
        "strategy", "⊆ version", "∈/∉ version"
    );
    for strat in [
        UnnestStrategy::NestedLoop,
        UnnestStrategy::NestJoin,
        UnnestStrategy::GanskiWong,
        UnnestStrategy::Optimal,
    ] {
        let a = big
            .query_with(SECTION8, QueryOptions::default().strategy(strat))
            .unwrap()
            .metrics
            .total_work();
        let b = big
            .query_with(SECTION8_FLAT, QueryOptions::default().strategy(strat))
            .unwrap()
            .metrics
            .total_work();
        println!("{:<14} {:>14} {:>14}", strat.name(), a, b);
    }
    println!(
        "\nOptimal = nest joins where grouping is required, semijoin/antijoin\n\
         where Theorem 1 licenses flattening — the paper's full pipeline."
    );
}
