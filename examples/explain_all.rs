//! Table 2, live: classify every predicate form of the paper's catalogue
//! and show the plan each one optimizes to.
//!
//! ```sh
//! cargo run --example explain_all
//! ```

use tmql::{Database, Plan, QueryOptions};
use tmql_workload::gen::{gen_xy, GenConfig};
use tmql_workload::queries::table2_templates;

fn shape(plan: &Plan) -> &'static str {
    if plan.any_node(&mut |n| matches!(n, Plan::SemiJoin { .. })) {
        "semijoin ⋉"
    } else if plan.any_node(&mut |n| matches!(n, Plan::AntiJoin { .. })) {
        "antijoin ▷"
    } else if plan.has_nest_join() {
        "nest join Δ"
    } else if plan.has_apply() {
        "nested loop"
    } else {
        "flat"
    }
}

fn main() {
    println!("== The reproduced Table 2 (classifier output) ==\n");
    println!("{}", tmql_core::table2::render());

    println!("== What each predicate's query plan becomes ==\n");
    let db = Database::from_catalog(gen_xy(&GenConfig::sized(32)));
    println!("{:<22} {:<14} {:>8}", "P(x, z)", "operator", "rows");
    println!("{}", "-".repeat(48));
    for (name, src) in table2_templates() {
        let (_, plan) = db.plan_with(&src, QueryOptions::default()).unwrap();
        let rows = db.query(&src).unwrap().len();
        println!("{:<22} {:<14} {:>8}", name, shape(&plan), rows);
    }

    println!("\n== One full EXPLAIN: the SUBSETEQ predicate ==\n");
    let (name, src) = &table2_templates()[6];
    println!("-- {name} --\n{src}\n");
    println!("{}", db.explain(src).unwrap());
}
