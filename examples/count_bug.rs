//! The COUNT bug, live (Section 2) — and its complex-object twin, the
//! SUBSETEQ bug (Section 4).
//!
//! Runs the bug queries under every unnesting strategy and prints who
//! returns what, so the lost dangling tuples are visible.
//!
//! ```sh
//! cargo run --example count_bug
//! ```

use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_workload::gen::{gen_xy, GenConfig};
use tmql_workload::queries::{COUNT_BUG, SUBSETEQ_BUG};
use tmql_workload::schemas::count_bug_catalog;

fn show(db: &Database, name: &str, src: &str) {
    println!("== {name} ==\n{src}\n");
    for strat in UnnestStrategy::ALL {
        let r = db
            .query_with(src, QueryOptions::default().strategy(strat))
            .expect("query runs");
        let marker = if strat.is_bug_compatible() {
            "  <- BUG"
        } else {
            ""
        };
        println!("{:>12}: {} rows{}", strat.name(), r.len(), marker);
    }
    println!();
}

fn main() {
    println!("The COUNT bug (Section 2)\n=========================\n");
    println!("R(a, b, c) with a dangling row (a=3, b=0, c=99): no S row has c=99,");
    println!("so the nested query's subquery returns ∅ and COUNT(∅) = 0 = b — the");
    println!("row belongs in the answer. Kim's join-based transformation loses it.\n");

    let db = Database::from_catalog(count_bug_catalog());
    println!("{}", db.catalog().table("R").unwrap());
    println!("{}", db.catalog().table("S").unwrap());
    show(&db, "COUNT-bug query", COUNT_BUG);

    println!("Correct answer (nested-loop semantics):");
    let oracle = db
        .query_with(
            COUNT_BUG,
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        )
        .unwrap();
    print!("{}", oracle.render());
    println!("\nKim's answer is missing (a = 3, b = 0, c = 99).\n");

    println!("Plans:\n");
    for strat in [
        UnnestStrategy::Kim,
        UnnestStrategy::GanskiWong,
        UnnestStrategy::NestJoin,
    ] {
        println!("--- {} ---", strat.name());
        let (_, plan) = db
            .plan_with(COUNT_BUG, QueryOptions::default().strategy(strat))
            .unwrap();
        println!("{plan}");
    }

    println!("\nThe SUBSETEQ bug (Section 4)\n============================\n");
    println!("Same disease, set-valued symptom: X rows with x.a = ∅ and no Y");
    println!("partner satisfy x.a ⊆ ∅ but vanish under nest-then-join.\n");
    let cfg = GenConfig {
        outer: 50,
        inner: 40,
        dangling_fraction: 0.4,
        ..GenConfig::default()
    };
    let db = Database::from_catalog(gen_xy(&cfg));
    show(&db, "SUBSETEQ-bug query (generated data)", SUBSETEQ_BUG);

    println!("The nest join needs no NULLs and no outerjoin: dangling tuples keep");
    println!("an empty set, which is 'part of the model' (Section 6).");
}
